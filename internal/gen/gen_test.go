package gen

import (
	"sort"
	"testing"
)

func degrees(e *EdgeList) []int {
	d := make([]int, e.N)
	for _, s := range e.Src {
		d[s]++
	}
	return d
}

func checkValid(t *testing.T, e *EdgeList) {
	t.Helper()
	if e.N <= 0 {
		t.Fatal("empty graph")
	}
	seen := map[[2]int32]bool{}
	for k := range e.Src {
		if e.Src[k] < 0 || int(e.Src[k]) >= e.N || e.Dst[k] < 0 || int(e.Dst[k]) >= e.N {
			t.Fatalf("edge %d out of range: %d->%d", k, e.Src[k], e.Dst[k])
		}
		if e.Src[k] == e.Dst[k] {
			t.Fatalf("self loop at %d", e.Src[k])
		}
		key := [2]int32{e.Src[k], e.Dst[k]}
		if seen[key] {
			t.Fatalf("duplicate edge %v", key)
		}
		seen[key] = true
	}
}

func checkSymmetric(t *testing.T, e *EdgeList) {
	t.Helper()
	seen := map[[2]int32]bool{}
	for k := range e.Src {
		seen[[2]int32{e.Src[k], e.Dst[k]}] = true
	}
	for k := range e.Src {
		if !seen[[2]int32{e.Dst[k], e.Src[k]}] {
			t.Fatalf("missing reverse edge %d->%d", e.Dst[k], e.Src[k])
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := Kron(8, 8, 42)
	b := Kron(8, 8, 42)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("Kron not deterministic")
	}
	for k := range a.Src {
		if a.Src[k] != b.Src[k] || a.Dst[k] != b.Dst[k] {
			t.Fatal("Kron edge lists differ")
		}
	}
	c := Kron(8, 8, 43)
	if c.NumEdges() == a.NumEdges() {
		same := true
		for k := range a.Src {
			if a.Src[k] != c.Src[k] || a.Dst[k] != c.Dst[k] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestKronClassProperties(t *testing.T) {
	e := Kron(10, 8, 1)
	checkValid(t, e)
	checkSymmetric(t, e)
	if e.Directed {
		t.Fatal("Kron must be undirected")
	}
	// Power-law-ish: max degree far above mean.
	d := degrees(e)
	sort.Ints(d)
	maxd := d[len(d)-1]
	mean := float64(e.NumEdges()) / float64(e.N)
	if float64(maxd) < 5*mean {
		t.Fatalf("Kron degree skew too small: max %d, mean %.1f", maxd, mean)
	}
}

func TestUrandClassProperties(t *testing.T) {
	e := Urand(10, 8, 1)
	checkValid(t, e)
	checkSymmetric(t, e)
	d := degrees(e)
	sort.Ints(d)
	maxd := d[len(d)-1]
	mean := float64(e.NumEdges()) / float64(e.N)
	// Uniform: max degree within a small factor of the mean.
	if float64(maxd) > 4*mean {
		t.Fatalf("Urand too skewed: max %d, mean %.1f", maxd, mean)
	}
	// Urand must be notably less skewed than Kron at the same scale.
	k := Kron(10, 8, 1)
	dk := degrees(k)
	sort.Ints(dk)
	if dk[len(dk)-1] <= maxd {
		t.Fatal("Kron should have higher max degree than Urand")
	}
}

func TestTwitterDirectedSkew(t *testing.T) {
	e := Twitter(10, 8, 1)
	checkValid(t, e)
	if !e.Directed {
		t.Fatal("Twitter must be directed")
	}
	// In-degree skew: celebrities collect followers.
	in := make([]int, e.N)
	for _, dv := range e.Dst {
		in[dv]++
	}
	sort.Ints(in)
	mean := float64(e.NumEdges()) / float64(e.N)
	if float64(in[len(in)-1]) < 8*mean {
		t.Fatalf("Twitter in-degree skew too small: max %d, mean %.1f", in[len(in)-1], mean)
	}
}

func TestWebDirected(t *testing.T) {
	e := Web(10, 8, 1)
	checkValid(t, e)
	if !e.Directed {
		t.Fatal("Web must be directed")
	}
}

// bfsDiameterLB runs BFS from vertex 0 and returns the eccentricity — a
// lower bound on diameter.
func bfsEccentricity(e *EdgeList) int {
	adj := make([][]int32, e.N)
	for k := range e.Src {
		adj[e.Src[k]] = append(adj[e.Src[k]], e.Dst[k])
		adj[e.Dst[k]] = append(adj[e.Dst[k]], e.Src[k])
	}
	dist := make([]int, e.N)
	for i := range dist {
		dist[i] = -1
	}
	dist[0] = 0
	q := []int32{0}
	maxd := 0
	for len(q) > 0 {
		u := q[0]
		q = q[1:]
		for _, v := range adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				if dist[v] > maxd {
					maxd = dist[v]
				}
				q = append(q, v)
			}
		}
	}
	return maxd
}

func TestRoadHighDiameter(t *testing.T) {
	road := Road(32, 1) // 1024 vertices
	checkValid(t, road)
	kron := Kron(10, 8, 1) // 1024 vertices
	dr := bfsEccentricity(road)
	dk := bfsEccentricity(kron)
	if dr < 5*dk {
		t.Fatalf("Road diameter (%d) should dwarf Kron's (%d)", dr, dk)
	}
	if dr < 31 {
		t.Fatalf("Road eccentricity %d too small for a 32x32 grid", dr)
	}
}

func TestAddUniformWeights(t *testing.T) {
	e := Kron(8, 4, 9)
	e.AddUniformWeights(7, 1, 255)
	if len(e.W) != e.NumEdges() {
		t.Fatal("weight count mismatch")
	}
	w := map[[2]int32]float64{}
	for k := range e.Src {
		if e.W[k] < 1 || e.W[k] > 255 {
			t.Fatalf("weight %v outside [1,255]", e.W[k])
		}
		w[[2]int32{e.Src[k], e.Dst[k]}] = e.W[k]
	}
	// Undirected symmetry: w(u,v) == w(v,u).
	for k := range e.Src {
		if w[[2]int32{e.Dst[k], e.Src[k]}] != e.W[k] {
			t.Fatalf("asymmetric weights on undirected edge %d-%d", e.Src[k], e.Dst[k])
		}
	}
	// Directed graphs get per-edge weights.
	d := Twitter(8, 4, 9)
	d.AddUniformWeights(7, 1, 255)
	if len(d.W) != d.NumEdges() {
		t.Fatal("directed weight count mismatch")
	}
}

func TestCSRConversion(t *testing.T) {
	e := Urand(8, 4, 3)
	ptr, idx, vals := e.CSR()
	if len(ptr) != e.N+1 || ptr[e.N] != e.NumEdges() || len(idx) != e.NumEdges() {
		t.Fatal("CSR shape wrong")
	}
	for i := 0; i < e.N; i++ {
		if ptr[i] > ptr[i+1] {
			t.Fatal("ptr not monotone")
		}
	}
	for _, v := range vals {
		if v != 1 {
			t.Fatal("unweighted CSR should carry unit values")
		}
	}
	// Edge count per source must match.
	d := degrees(e)
	for i := 0; i < e.N; i++ {
		if ptr[i+1]-ptr[i] != d[i] {
			t.Fatalf("row %d count %d, degree %d", i, ptr[i+1]-ptr[i], d[i])
		}
	}
}
