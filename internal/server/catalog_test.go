package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"lagraph/internal/algo"
	"lagraph/internal/registry"
)

// TestAlgorithmIntrospection: GET /algorithms round-trips every
// registered descriptor with its schema, and GET /algorithms/{name}
// serves single entries.
func TestAlgorithmIntrospection(t *testing.T) {
	ts, _ := newTestServer(t, 0)

	code, body := doJSON(t, "GET", ts.URL+"/algorithms", nil)
	if code != 200 {
		t.Fatalf("list: %d %v", code, body)
	}
	listed := body["algorithms"].([]any)
	if int(body["count"].(float64)) != len(listed) {
		t.Fatalf("count %v != len %d", body["count"], len(listed))
	}
	byName := map[string]map[string]any{}
	for _, x := range listed {
		in := x.(map[string]any)
		byName[in["name"].(string)] = in
	}
	for _, in := range algo.Default().List() {
		got, ok := byName[in.Name]
		if !ok {
			t.Errorf("descriptor %q missing from GET /algorithms", in.Name)
			continue
		}
		if got["tier"] != string(in.Tier) || got["doc"] != in.Doc {
			t.Errorf("%s: tier/doc mismatch: %v", in.Name, got)
		}
		if len(got["params"].([]any)) != len(in.Params) {
			t.Errorf("%s: param count %d, want %d", in.Name, len(got["params"].([]any)), len(in.Params))
		}
		// The single-entry endpoint agrees.
		code, one := doJSON(t, "GET", ts.URL+"/algorithms/"+in.Name, nil)
		if code != 200 || one["name"] != in.Name {
			t.Errorf("GET /algorithms/%s: %d %v", in.Name, code, one)
		}
	}
	if len(byName) != len(algo.Default().List()) {
		t.Errorf("GET /algorithms has %d entries, catalog has %d", len(byName), len(algo.Default().List()))
	}

	// The schema itself round-trips: pagerank's damping spec carries its
	// typed default and exclusive bounds.
	var damping map[string]any
	for _, p := range byName["pagerank"]["params"].([]any) {
		if spec := p.(map[string]any); spec["name"] == "damping" {
			damping = spec
		}
	}
	if damping == nil || damping["type"] != "float" || damping["default"].(float64) != 0.85 ||
		damping["min_exclusive"] != true || damping["max_exclusive"] != true {
		t.Fatalf("damping schema did not round-trip: %v", damping)
	}
}

// TestUnknownAlgorithmListsKnownNames: 404s for unknown algorithms name
// the catalog's known algorithms, on introspection, sync and async paths.
func TestUnknownAlgorithmListsKnownNames(t *testing.T) {
	ts, _ := newTestServer(t, 0)
	loadSyntheticGraph(t, ts.URL, "g", "kron", 5)

	for _, req := range []struct {
		method, url string
		body        any
	}{
		{"GET", ts.URL + "/algorithms/nope", nil},
		{"POST", ts.URL + "/graphs/g/algorithms/nope", nil},
		{"POST", ts.URL + "/graphs/g/jobs", map[string]any{"algorithm": "nope"}},
	} {
		code, body := doJSON(t, req.method, req.url, req.body)
		if code != 404 {
			t.Fatalf("%s %s: %d %v", req.method, req.url, code, body)
		}
		msg := body["error"].(string)
		for _, want := range []string{"bfs", "pagerank", "lcc"} {
			if !strings.Contains(msg, want) {
				t.Errorf("%s %s: error %q does not list %q", req.method, req.url, msg, want)
			}
		}
	}
}

// TestValidationErrorsNameTheField: every parameter-validation failure —
// schema-level or kernel-level, sync or async — is a 400 whose body
// names the offending field.
func TestValidationErrorsNameTheField(t *testing.T) {
	ts, _ := newTestServer(t, 0)
	loadSyntheticGraph(t, ts.URL, "g", "kron", 5) // 32 vertices

	cases := []struct {
		alg    string
		params map[string]any
		field  string
	}{
		{"bfs", map[string]any{"sauce": 3}, "sauce"},               // unknown param
		{"bfs", map[string]any{"source": -2}, "source"},            // schema range
		{"bfs", map[string]any{"source": 1 << 30}, "source"},       // kernel-side bounds
		{"pagerank", map[string]any{"damping": 1.5}, "damping"},    // schema range
		{"pagerank", map[string]any{"variant": "x"}, "variant"},    // enum
		{"sssp", map[string]any{"delta": -1}, "delta"},             // exclusive min
		{"bc", map[string]any{"sources": []int{0, 99}}, "sources"}, // kernel-side bounds
		{"bfs", map[string]any{"limit": 0}, "limit"},               // schema range
	}
	for _, tc := range cases {
		// Sync path.
		code, body := doJSON(t, "POST", ts.URL+"/graphs/g/algorithms/"+tc.alg, tc.params)
		if code != 400 {
			t.Errorf("sync %s %v: status %d, want 400 (%v)", tc.alg, tc.params, code, body)
			continue
		}
		if body["field"] != tc.field {
			t.Errorf("sync %s %v: field = %v, want %q (%v)", tc.alg, tc.params, body["field"], tc.field, body)
		}
		// Async path: schema failures reject at submission.
		code, body = doJSON(t, "POST", ts.URL+"/graphs/g/jobs",
			map[string]any{"algorithm": tc.alg, "params": tc.params})
		if tc.params["source"] == 1<<30 || tc.alg == "bc" {
			continue // kernel-side failures surface on the job, tested below
		}
		if code != 400 || body["field"] != tc.field {
			t.Errorf("async %s %v: %d field=%v, want 400 %q", tc.alg, tc.params, code, body["field"], tc.field)
		}
	}
}

// dummyCatalog builds a Builtin catalog plus one runtime-registered test
// kernel — the extensibility proof: a single Register call, zero edits
// to server or jobs dispatch code.
func dummyCatalog(t *testing.T, runs *atomic.Int32) *algo.Catalog {
	t.Helper()
	c := algo.Builtin()
	c.MustRegister(algo.Descriptor{
		Name: "dummy.echo",
		Tier: algo.TierAdvanced,
		Doc:  "test kernel: echoes its parameters and the graph size",
		Params: []algo.Spec{
			{Name: "k", Type: algo.TInt, Default: 7, Min: algo.F64(1), Doc: "echoed knob"},
			{Name: "tag", Type: algo.TString, Default: "x", Doc: "echoed tag"},
		},
		Run: func(_ context.Context, g *algo.Graph, p algo.Params) (algo.Result, error) {
			runs.Add(1)
			return algo.Result{
				"k":     p.Int("k"),
				"tag":   p.String("tag"),
				"nodes": g.NumNodes(),
			}, nil
		},
	})
	return c
}

// TestRuntimeRegisteredKernelEndToEnd drives a runtime-registered kernel
// through every layer: introspection, the synchronous endpoint, the
// async jobs path, and the canonical-params result cache (including the
// key-order regression: identical params in different JSON key order
// must dedup to one computation).
func TestRuntimeRegisteredKernelEndToEnd(t *testing.T) {
	var runs atomic.Int32
	reg := registry.New(0)
	srv := New(reg, Options{Catalog: dummyCatalog(t, &runs)})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	loadSyntheticGraph(t, ts.URL, "g", "kron", 5)

	// Introspection sees it.
	code, body := doJSON(t, "GET", ts.URL+"/algorithms/dummy.echo", nil)
	if code != 200 || body["tier"] != "advanced" {
		t.Fatalf("introspection: %d %v", code, body)
	}

	// Sync endpoint runs it.
	code, body = doJSON(t, "POST", ts.URL+"/graphs/g/algorithms/dummy.echo",
		map[string]any{"k": 3, "tag": "hello"})
	if code != 200 {
		t.Fatalf("sync run: %d %v", code, body)
	}
	if body["k"].(float64) != 3 || body["tag"] != "hello" || body["nodes"].(float64) != 32 ||
		body["algorithm"] != "dummy.echo" || body["graph"] != "g" {
		t.Fatalf("sync result: %v", body)
	}
	if runs.Load() != 1 {
		t.Fatalf("runs = %d, want 1", runs.Load())
	}

	// Async jobs path, with a key-order-scrambled but identical parameter
	// object: decoded JSON key order must not affect the cache key, so
	// this is a pure cache hit — no second computation. (The raw string
	// body pins the wire-level key order; a Go map would not.)
	sendRaw := func(raw string) (int, map[string]any) {
		t.Helper()
		req, err := http.NewRequest("POST", ts.URL+"/graphs/g/jobs", strings.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out := map[string]any{}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, out
	}
	code, job := sendRaw(`{"algorithm": "dummy.echo", "params": {"tag": "hello", "k": 3}}`)
	if code != http.StatusAccepted {
		t.Fatalf("async submit: %d %v", code, job)
	}
	if job["state"] != "done" || job["cache_hit"] != true {
		t.Fatalf("key-order-scrambled resubmission was not a cache hit: %v", job)
	}
	if runs.Load() != 1 {
		t.Fatalf("runs = %d after identical resubmissions, want 1 (canonical keying)", runs.Load())
	}

	// Different params compute again, and the job result endpoint serves
	// the envelope.
	code, job = doJSON(t, "POST", ts.URL+"/graphs/g/jobs", map[string]any{
		"algorithm": "dummy.echo", "params": map[string]any{"k": 4},
	})
	if code != http.StatusAccepted {
		t.Fatalf("fresh submit: %d %v", code, job)
	}
	id := job["id"].(string)
	pollJob(t, ts.URL, id, func(s string) bool { return s == "done" })
	code, res := doJSON(t, "GET", ts.URL+"/jobs/"+id+"/result", nil)
	if code != 200 || res["k"].(float64) != 4 || res["tag"] != "x" {
		t.Fatalf("job result: %d %v", code, res)
	}
	if runs.Load() != 2 {
		t.Fatalf("runs = %d, want 2", runs.Load())
	}

	// Its schema validates like any built-in: 400 naming the field.
	code, body = doJSON(t, "POST", ts.URL+"/graphs/g/algorithms/dummy.echo",
		map[string]any{"k": 0})
	if code != 400 || body["field"] != "k" {
		t.Fatalf("validation: %d %v", code, body)
	}
}

// TestReservedResultKeyFailsLoudly: a kernel whose result collides with
// the response envelope (graph/algorithm/seconds) is a registration bug
// surfaced as a 500, never silently clobbered output.
func TestReservedResultKeyFailsLoudly(t *testing.T) {
	c := algo.Builtin()
	c.MustRegister(algo.Descriptor{
		Name: "bad.echo", Tier: algo.TierAdvanced, Doc: "test kernel with a reserved result key",
		Run: func(_ context.Context, _ *algo.Graph, _ algo.Params) (algo.Result, error) {
			return algo.Result{"seconds": 99}, nil
		},
	})
	reg := registry.New(0)
	srv := New(reg, Options{Catalog: c})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	loadSyntheticGraph(t, ts.URL, "g", "kron", 5)

	code, body := doJSON(t, "POST", ts.URL+"/graphs/g/algorithms/bad.echo", nil)
	if code != http.StatusInternalServerError {
		t.Fatalf("reserved-key kernel: %d %v, want 500", code, body)
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "seconds") {
		t.Fatalf("error %q does not name the colliding key", msg)
	}
}

// TestLCCOverHTTP: the new kernel is reachable with zero server changes —
// the acceptance proof for the catalog refactor.
func TestLCCOverHTTP(t *testing.T) {
	ts, _ := newTestServer(t, 0)
	loadSyntheticGraph(t, ts.URL, "und", "kron", 7)
	loadSyntheticGraph(t, ts.URL, "dir", "twitter", 6)

	code, body := doJSON(t, "POST", ts.URL+"/graphs/und/algorithms/lcc", nil)
	if code != 200 {
		t.Fatalf("lcc: %d %v", code, body)
	}
	coeffs, ok := body["coefficients"].(map[string]any)
	if !ok || coeffs["nvals"].(float64) <= 0 {
		t.Fatalf("lcc result: %v", body)
	}
	if _, ok := body["mean"]; !ok {
		t.Fatalf("lcc result missing mean: %v", body)
	}
	// Directed graphs are rejected as a 400, not a 500.
	if code, _ := doJSON(t, "POST", ts.URL+"/graphs/dir/algorithms/lcc", nil); code != 400 {
		t.Fatalf("lcc on directed: %d, want 400", code)
	}
	// And the async path works too.
	code, job := doJSON(t, "POST", ts.URL+"/graphs/und/jobs", map[string]any{"algorithm": "lcc"})
	if code != http.StatusAccepted {
		t.Fatalf("async lcc: %d %v", code, job)
	}
	pollJob(t, ts.URL, job["id"].(string), func(s string) bool { return s == "done" })
}

// TestAdvancedVariantsOverHTTP: the advanced-tier catalog entries are
// first-class endpoints.
func TestAdvancedVariantsOverHTTP(t *testing.T) {
	ts, _ := newTestServer(t, 0)
	loadSyntheticGraph(t, ts.URL, "und", "kron", 7)
	loadSyntheticGraph(t, ts.URL, "dir", "twitter", 6)

	for _, tc := range []struct {
		graph, alg string
		params     map[string]any
		wantField  string
	}{
		{"und", "bfs.level", map[string]any{"source": 1}, "level"},
		{"und", "pagerank.gx", map[string]any{"max_iter": 20}, "ranks"},
		{"und", "cc.advanced", nil, "components"},
		{"und", "tc.advanced", map[string]any{"method": "burkhardt"}, "triangles"},
		{"und", "tc.advanced", map[string]any{"method": "sandia-ll", "presort": true}, "triangles"},
		{"dir", "bfs.level", map[string]any{"source": 0}, "level"},
		{"dir", "pagerank.gx", nil, "ranks"},
	} {
		url := fmt.Sprintf("%s/graphs/%s/algorithms/%s", ts.URL, tc.graph, tc.alg)
		code, body := doJSON(t, "POST", url, tc.params)
		if code != 200 {
			t.Errorf("%s on %s: status %d, body %v", tc.alg, tc.graph, code, body)
			continue
		}
		if _, ok := body[tc.wantField]; !ok {
			t.Errorf("%s on %s: missing %q in %v", tc.alg, tc.graph, tc.wantField, body)
		}
	}
	// tc.advanced on a directed graph is a client error.
	if code, _ := doJSON(t, "POST", ts.URL+"/graphs/dir/algorithms/tc.advanced", nil); code != 400 {
		t.Fatalf("tc.advanced on directed: want 400")
	}
	// cc.advanced on a non-symmetric directed graph is a client error
	// (symmetry materializes to false, the kernel refuses).
	if code, _ := doJSON(t, "POST", ts.URL+"/graphs/dir/algorithms/cc.advanced", nil); code != 400 {
		t.Fatalf("cc.advanced on asymmetric directed: want 400")
	}
}
