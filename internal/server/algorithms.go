package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"lagraph/internal/algo"
	"lagraph/internal/jobs"
	"lagraph/internal/tenant"
)

// Algorithm execution and introspection ride the self-describing catalog
// (internal/algo): the server owns no per-algorithm code. A request is
// routed by name into the catalog, its JSON params are validated against
// the descriptor's typed schema (failures are 400 with the offending
// field named), the descriptor's declared properties are materialized
// through the registry's single flight, and the kernel closure runs on
// the jobs engine keyed by the schema-normalized canonical params.
//
//	GET /algorithms          every registered descriptor with its schema
//	GET /algorithms/{name}   one descriptor

// algoResponse is the envelope of algorithm results: the catalog
// kernel's named outputs merged with the request identity and compute
// time. Completed responses are stored in the jobs engine's result cache
// and may serve several requests — they are immutable once the
// computation returns (Seconds is the original compute time).
type algoResponse struct {
	Graph     string
	Algorithm string
	Seconds   float64
	Result    algo.Result
	// Report is the run's introspection record. It always rides the cached
	// response (immutable, so cache hits keep the original run's report)
	// but is rendered only under ?explain=1 and GET /jobs/{id}/report —
	// the default wire shape is unchanged.
	Report *algo.RunReport
}

// MarshalJSON inlines the kernel's result entries next to the envelope
// fields, keeping the wire shape flat ({"graph":..., "ranks":...}).
func (r *algoResponse) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.envelope(false))
}

// envelope renders the flat response map, optionally with the report.
func (r *algoResponse) envelope(explain bool) map[string]any {
	out := make(map[string]any, len(r.Result)+4)
	for k, v := range r.Result {
		out[k] = v
	}
	out["graph"] = r.Graph
	out["algorithm"] = r.Algorithm
	out["seconds"] = r.Seconds
	if explain && r.Report != nil {
		out["report"] = r.Report
	}
	return out
}

// explainResponse renders an algoResponse with its report included.
type explainResponse struct{ *algoResponse }

func (r explainResponse) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.envelope(true))
}

// handleAlgorithm is the synchronous algorithm endpoint: submit-and-wait
// on the jobs engine (sharing dedup and the versioned result cache with
// async submissions); a disconnected client whose job has no other
// audience cancels the underlying computation.
func (s *Server) handleAlgorithm(w http.ResponseWriter, r *http.Request) {
	name, alg := r.PathValue("name"), r.PathValue("alg")

	d, err := s.catalog.Lookup(alg)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	// Parameter bodies are tiny; the params cap (1 MiB by default) keeps a
	// hostile request from buffering arbitrary JSON (uploads have their
	// own, larger cap).
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxParamsBytes)
	raw, err := decodeParamsBody(r.Body)
	if err != nil {
		writeBodyError(w, err)
		return
	}
	p, err := d.Validate(raw)
	if err != nil {
		writeValidationError(w, err)
		return
	}
	class, err := requestClass(r, r.URL.Query().Get("priority"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	job, err := s.submitAlgorithmJob(r, name, d, p, false, 0, class)
	if err != nil {
		s.writeSubmitError(w, r, err)
		return
	}
	s.record(r, tenant.OutcomeAdmitted)
	if !s.jobs.WaitOrAbandon(r.Context(), job) {
		// The client is gone; if it was the job's only audience the job is
		// already cancelled. Nobody will read this response.
		writeError(w, http.StatusServiceUnavailable, "request abandoned")
		return
	}
	s.writeJobOutcomeExplain(w, job, explainRequested(r))
}

// explainRequested reports whether the request opted into the run-report
// rendering (?explain=1 or any usual truthy spelling).
func explainRequested(r *http.Request) bool {
	switch r.URL.Query().Get("explain") {
	case "1", "true", "yes", "on":
		return true
	}
	return false
}

// handleListAlgorithms is GET /algorithms: the whole catalog, each entry
// with its tier, doc, property requirements and typed parameter schema.
func (s *Server) handleListAlgorithms(w http.ResponseWriter, _ *http.Request) {
	infos := s.catalog.List()
	writeJSON(w, http.StatusOK, map[string]any{
		"count":      len(infos),
		"algorithms": infos,
	})
}

// handleGetAlgorithm is GET /algorithms/{name}.
func (s *Server) handleGetAlgorithm(w http.ResponseWriter, r *http.Request) {
	d, err := s.catalog.Lookup(r.PathValue("name"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, d.Info())
}

// writeJobOutcome renders a terminal job the way the synchronous API
// always has: the bare result envelope on success, a mapped error
// otherwise.
func (s *Server) writeJobOutcome(w http.ResponseWriter, j *jobs.Job) {
	s.writeJobOutcomeExplain(w, j, false)
}

// writeJobOutcomeExplain is writeJobOutcome with opt-in report rendering:
// under explain a successful algorithm response carries its "report"
// envelope key.
func (s *Server) writeJobOutcomeExplain(w http.ResponseWriter, j *jobs.Job, explain bool) {
	if v, ok := j.Result(); ok {
		if resp, isAlgo := v.(*algoResponse); isAlgo && explain {
			writeJSON(w, http.StatusOK, explainResponse{resp})
			return
		}
		writeJSON(w, http.StatusOK, v)
		return
	}
	err := j.Err()
	switch {
	case err == nil: // terminal without result or error: cancelled race
		writeError(w, http.StatusServiceUnavailable, "job cancelled")
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, "job cancelled")
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "job deadline exceeded")
	case algo.IsUnknown(err):
		writeError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, errInternalFailure):
		writeError(w, http.StatusInternalServerError, err.Error())
	default:
		// Parameter problems detected inside the kernel (an out-of-range
		// source vertex, a semantically invalid knob) carry the offending
		// field, exactly like schema-validation failures.
		writeValidationError(w, err)
	}
}

// writeValidationError answers 400, naming the offending parameter when
// the error is (or wraps) a ParamError.
func writeValidationError(w http.ResponseWriter, err error) {
	var pe *algo.ParamError
	if errors.As(err, &pe) {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: pe.Error(), Field: pe.Field})
		return
	}
	writeError(w, http.StatusBadRequest, err.Error())
}

// errInternalFailure tags job errors that are the server's fault (e.g. a
// property materialization failing), mapping them to 500 instead of the
// 400 that parameter errors earn.
var errInternalFailure = errors.New("internal failure")

// decodeParamsBody reads an optional JSON object of algorithm parameters.
// An empty body means all-default parameters; numbers are kept as
// json.Number so the schema layer can distinguish ints from floats
// losslessly.
func decodeParamsBody(body io.Reader) (map[string]any, error) {
	dec := json.NewDecoder(body)
	dec.UseNumber()
	raw := map[string]any{}
	if err := dec.Decode(&raw); err != nil {
		if errors.Is(err, io.EOF) {
			return map[string]any{}, nil
		}
		return nil, fmt.Errorf("bad JSON body: %w", err)
	}
	if dec.More() {
		return nil, errors.New("bad JSON body: trailing data")
	}
	return raw, nil
}

// decodeJSONBody parses an optional JSON request body into v. An empty
// body is fine (all-default parameters); trailing garbage is not.
func decodeJSONBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	dec.UseNumber()
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return nil
		}
		return fmt.Errorf("bad JSON body: %w", err)
	}
	if dec.More() {
		return errors.New("bad JSON body: trailing data")
	}
	return nil
}
