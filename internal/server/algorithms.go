package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"lagraph/internal/grb"
	"lagraph/internal/jobs"
	"lagraph/internal/lagraph"
	"lagraph/internal/registry"
)

// algoParams is the JSON body of POST /graphs/{name}/algorithms/{alg} and
// the "params" object of an async job submission. Every field is optional;
// algorithms pick sensible defaults.
type algoParams struct {
	Source  int   `json:"source"`
	Sources []int `json:"sources"` // bc batch

	Damping float64 `json:"damping"` // pagerank
	Tol     float64 `json:"tol"`
	MaxIter int     `json:"max_iter"`
	Variant string  `json:"variant"` // pagerank: "gap" (default) | "gx"

	Delta float64 `json:"delta"` // sssp bucket width

	Level bool `json:"level"` // bfs: also return levels

	Limit int `json:"limit"` // max entries echoed per vector (default 32)
}

// normalize clamps the echo limit; the result doubles as the canonical
// parameter encoding for the jobs engine's dedup/cache key, so two
// requests that differ only in an out-of-range limit share one
// computation.
func (p *algoParams) normalize() {
	if p.Limit <= 0 {
		p.Limit = 32
	}
	if p.Limit > 1<<20 {
		p.Limit = 1 << 20
	}
}

// canonical returns the dedup/cache key encoding of the parameters
// (struct-order JSON, deterministic for a fixed struct definition).
func (p *algoParams) canonical() string {
	b, err := json.Marshal(p)
	if err != nil { // unreachable: plain struct of scalars
		return fmt.Sprintf("%+v", *p)
	}
	return string(b)
}

// vecSummary is the JSON shape of a sparse result vector: total entry
// count plus the first Limit entries.
type vecSummary struct {
	NVals     int        `json:"nvals"`
	Entries   []vecEntry `json:"entries"`
	Truncated bool       `json:"truncated"`
}

type vecEntry struct {
	I int     `json:"i"`
	V float64 `json:"v"`
}

func summarize[T grb.Number](v *grb.Vector[T], limit int) *vecSummary {
	if v == nil {
		return nil
	}
	s := &vecSummary{NVals: v.NVals(), Entries: []vecEntry{}}
	v.Iterate(func(i int, x T) {
		if len(s.Entries) < limit {
			s.Entries = append(s.Entries, vecEntry{I: i, V: float64(x)})
		} else {
			s.Truncated = true
		}
	})
	return s
}

// algoResponse is the common envelope of algorithm results. Completed
// responses are stored in the jobs engine's result cache and may be
// served to several requests — they are immutable once the computation
// returns (Seconds is the original compute time, not the serve time).
type algoResponse struct {
	Graph     string `json:"graph"`
	Algorithm string `json:"algorithm"`

	Seconds    float64 `json:"seconds"`
	Iterations int     `json:"iterations,omitempty"`

	Triangles  *int64 `json:"triangles,omitempty"`
	Components *int   `json:"components,omitempty"`
	Reached    *int   `json:"reached,omitempty"`

	Parent     *vecSummary `json:"parent,omitempty"`
	Level      *vecSummary `json:"level,omitempty"`
	Ranks      *vecSummary `json:"ranks,omitempty"`
	Labels     *vecSummary `json:"labels,omitempty"`
	Distances  *vecSummary `json:"distances,omitempty"`
	Centrality *vecSummary `json:"centrality,omitempty"`
}

// handleAlgorithm is the synchronous algorithm endpoint, re-implemented as
// submit-and-wait on the jobs engine: the request becomes a job (sharing
// dedup and the versioned result cache with async submissions), the
// handler waits with the request context, and a disconnected client whose
// job has no other audience cancels the underlying computation.
func (s *Server) handleAlgorithm(w http.ResponseWriter, r *http.Request) {
	name, alg := r.PathValue("name"), r.PathValue("alg")

	// Parameter bodies are tiny; a 1 MiB cap keeps a hostile request from
	// buffering arbitrary JSON (uploads have their own, larger cap).
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	var p algoParams
	if err := decodeJSONBody(r, &p); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	job, err := s.submitAlgorithmJob(name, alg, &p, false, 0)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	if !s.jobs.WaitOrAbandon(r.Context(), job) {
		// The client is gone; if it was the job's only audience the job is
		// already cancelled. Nobody will read this response.
		writeError(w, http.StatusServiceUnavailable, "request abandoned")
		return
	}
	s.writeJobOutcome(w, job)
}

// writeJobOutcome renders a terminal job the way the synchronous API
// always has: the bare result envelope on success, a mapped error
// otherwise.
func (s *Server) writeJobOutcome(w http.ResponseWriter, j *jobs.Job) {
	if v, ok := j.Result(); ok {
		writeJSON(w, http.StatusOK, v)
		return
	}
	err := j.Err()
	switch {
	case err == nil: // terminal without result or error: cancelled race
		writeError(w, http.StatusServiceUnavailable, "job cancelled")
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, "job cancelled")
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "job deadline exceeded")
	case isUnknownAlg(err):
		writeError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, errInternalFailure):
		writeError(w, http.StatusInternalServerError, err.Error())
	default:
		writeError(w, http.StatusBadRequest, err.Error())
	}
}

// requiredProperties maps an algorithm to the cached properties it wants,
// so the registry materializes them once per graph instead of every
// Basic-mode call racing to compute its own.
func requiredProperties(alg string, g *lagraph.Graph[float64]) []registry.Property {
	switch alg {
	case "bfs", "pagerank":
		return []registry.Property{registry.PropAT, registry.PropRowDegree}
	case "bc":
		return []registry.Property{registry.PropAT}
	case "cc":
		if g.Kind == lagraph.AdjacencyDirected {
			return []registry.Property{registry.PropAT, registry.PropSymmetry}
		}
		return nil
	case "tc":
		return []registry.Property{registry.PropNDiag, registry.PropRowDegree}
	default:
		return nil
	}
}

var errUnknownAlg = errors.New("unknown algorithm")

func isUnknownAlg(err error) bool { return errors.Is(err, errUnknownAlg) }

// errInternalFailure tags job errors that are the server's fault (e.g. a
// property materialization failing), mapping them to 500 instead of the
// 400 that parameter errors earn.
var errInternalFailure = errors.New("internal failure")

// knownAlg validates an algorithm name before a job is minted for it.
func knownAlg(alg string) bool {
	switch alg {
	case "bfs", "pagerank", "cc", "sssp", "tc", "bc":
		return true
	}
	return false
}

// runAlgorithm dispatches one algorithm call through the cancellable Ctx
// entry points; the iteration loops poll ctx so a cancelled job stops
// computing within one iteration. Properties the algorithm requires are
// already materialized, so only Advanced-mode (non-caching) entry points
// run here and concurrent calls never mutate the graph.
func runAlgorithm(ctx context.Context, alg string, g *lagraph.Graph[float64], p *algoParams, resp *algoResponse) error {
	switch alg {
	case "bfs":
		parent, level, err := lagraph.BreadthFirstSearchCtx(ctx, g, p.Source, true, p.Level)
		if err != nil && !lagraph.IsWarning(err) {
			return err
		}
		reached := parent.NVals()
		resp.Reached = &reached
		resp.Parent = summarize(parent, p.Limit)
		if p.Level {
			resp.Level = summarize(level, p.Limit)
		}
		return nil

	case "pagerank":
		damping, tol, iters := p.Damping, p.Tol, p.MaxIter
		if damping == 0 {
			damping = 0.85
		}
		if tol == 0 {
			tol = 1e-4
		}
		if iters == 0 {
			iters = 100
		}
		var (
			ranks *grb.Vector[float64]
			n     int
			err   error
		)
		switch p.Variant {
		case "", "gap":
			ranks, n, err = lagraph.PageRankGAPCtx(ctx, g, damping, tol, iters)
		case "gx":
			ranks, n, err = lagraph.PageRankGXCtx(ctx, g, damping, tol, iters)
		default:
			return fmt.Errorf("unknown pagerank variant %q (gap|gx)", p.Variant)
		}
		if err != nil && !lagraph.IsWarning(err) {
			return err
		}
		resp.Iterations = n
		resp.Ranks = summarize(ranks, p.Limit)
		return nil

	case "cc":
		labels, err := lagraph.ConnectedComponentsCtx(ctx, g)
		if err != nil && !lagraph.IsWarning(err) {
			return err
		}
		comps := map[int64]struct{}{}
		labels.Iterate(func(_ int, x int64) { comps[x] = struct{}{} })
		n := len(comps)
		resp.Components = &n
		resp.Labels = summarize(labels, p.Limit)
		return nil

	case "sssp":
		delta := p.Delta
		if delta <= 0 {
			delta = 64 // the harness default for GAP-convention [1,255] weights
		}
		dist, err := lagraph.SSSPDeltaSteppingCtx(ctx, g, p.Source, delta)
		if err != nil && !lagraph.IsWarning(err) {
			return err
		}
		// Unreachable vertices hold +inf, which JSON cannot carry; report
		// reachable distances only.
		sum := &vecSummary{Entries: []vecEntry{}}
		dist.Iterate(func(i int, d float64) {
			if !lagraph.Reachable(d) {
				return
			}
			sum.NVals++
			if len(sum.Entries) < p.Limit {
				sum.Entries = append(sum.Entries, vecEntry{I: i, V: d})
			} else {
				sum.Truncated = true
			}
		})
		resp.Reached = &sum.NVals
		resp.Distances = sum
		return nil

	case "tc":
		count, err := lagraph.TriangleCountCtx(ctx, g)
		if err != nil && !lagraph.IsWarning(err) {
			return err
		}
		resp.Triangles = &count
		return nil

	case "bc":
		sources := p.Sources
		if len(sources) == 0 {
			sources = []int{p.Source}
		}
		// The frontier matrices are ns x n; bound the batch so one request
		// cannot exhaust memory (the GAP convention is 4 sources).
		if len(sources) > 64 {
			return fmt.Errorf("bc source batch too large: %d > 64", len(sources))
		}
		cent, err := lagraph.BetweennessCentralityAdvancedCtx(ctx, g, sources)
		if err != nil && !lagraph.IsWarning(err) {
			return err
		}
		resp.Centrality = summarize(cent, p.Limit)
		return nil

	default:
		return fmt.Errorf("%w %q (bfs|pagerank|cc|sssp|tc|bc)", errUnknownAlg, alg)
	}
}

// decodeJSONBody parses an optional JSON request body into v. An empty
// body is fine (all-default parameters); trailing garbage is not.
func decodeJSONBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return nil
		}
		return fmt.Errorf("bad JSON body: %w", err)
	}
	if dec.More() {
		return errors.New("bad JSON body: trailing data")
	}
	return nil
}
