package server

import (
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"lagraph/internal/gen"
	"lagraph/internal/grb"
	"lagraph/internal/lagraph"
	"lagraph/internal/obs"
	"lagraph/internal/registry"
	"lagraph/internal/tenant"
)

// loadSpec is the JSON body of POST /graphs when loading a synthetic
// graph from internal/gen.
type loadSpec struct {
	Name       string `json:"name"`
	Class      string `json:"class"` // kron | urand | twitter | web | road
	Scale      int    `json:"scale"`
	EdgeFactor int    `json:"edge_factor"`
	Seed       uint64 `json:"seed"`
	Weights    bool   `json:"weights"`
	WeightLo   int    `json:"weight_lo"`
	WeightHi   int    `json:"weight_hi"`
}

// loadResponse is returned by POST /graphs.
type loadResponse struct {
	registry.GraphInfo
	Source  string  `json:"source"` // "synthetic" | "matrixmarket" | "binary"
	Seconds float64 `json:"seconds"`
}

// maxLoadScale bounds synthetic generation so one request cannot occupy
// the machine for minutes.
const maxLoadScale = 22

// handleLoadGraph loads a graph into the registry. The load path is
// chosen by Content-Type / ?format:
//
//	application/json                   → synthetic spec (internal/gen)
//	?format=mm  (or Content-Type text) → Matrix Market upload, ?kind=
//	?format=bin                        → LAGraph binary upload, ?kind=
func (s *Server) handleLoadGraph(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxUploadBytes)

	var (
		name   string
		g      *lagraph.Graph[float64]
		source string
		err    error
	)
	format := strings.ToLower(r.URL.Query().Get("format"))
	ctype := r.Header.Get("Content-Type")
	_, psp := obs.StartSpan(r.Context(), "parse")
	switch {
	case format == "" && strings.HasPrefix(ctype, "application/json"):
		name, g, err = s.loadSynthetic(r)
		source = "synthetic"
	case format == "mm":
		name, g, err = s.loadUpload(r, "mm")
		source = "matrixmarket"
	case format == "bin":
		name, g, err = s.loadUpload(r, "bin")
		source = "binary"
	default:
		psp.End()
		writeError(w, http.StatusUnsupportedMediaType,
			"specify a JSON synthetic spec (Content-Type: application/json) or ?format=mm|bin upload")
		return
	}
	psp.SetAttr("source", source)
	psp.End()
	if err != nil {
		writeBodyError(w, err)
		return
	}
	display := name
	name = scopeGraph(r, name)
	if t := requestTenant(r); t != nil {
		// Quota admission before the registry sees the graph: the facade
		// mutex serializes this check against concurrent loads by the same
		// tenant, so two requests cannot both pass a last-slot check.
		if err := s.tenants.AdmitGraph(t, registry.EstimateBytes(g)); err != nil {
			s.record(r, tenant.OutcomeOverQuota)
			writeError(w, http.StatusInsufficientStorage, err.Error())
			return
		}
	}
	entry, err := s.reg.Add(name, g)
	if err != nil {
		writeRegistryError(w, r, err)
		return
	}
	s.record(r, tenant.OutcomeAdmitted)
	if s.store != nil {
		// Durable before acknowledged: a load the store cannot checkpoint
		// is refused, not served from memory only to vanish on restart.
		if err := s.store.SaveGraph(name, g, entry.Version()); err != nil {
			_ = s.reg.Remove(name) // the removal listener clears any partial on-disk state
			writeError(w, http.StatusInternalServerError, "persisting graph: "+err.Error())
			return
		}
		// A DELETE can land in the window between Add and SaveGraph: its
		// removal listener found no durable state to drop, so the persist
		// above would resurrect a graph the API acknowledged as deleted.
		// Re-check and honor the delete (the load still "happened" — it
		// was simply deleted right after — so the 201 stands).
		if lease, err := s.reg.Acquire(name); err != nil {
			_ = s.store.RemoveGraph(name)
		} else {
			lease.Release()
		}
	}
	info := entry.Info()
	info.Name = display
	writeJSON(w, http.StatusCreated, loadResponse{
		GraphInfo: info,
		Source:    source,
		Seconds:   time.Since(start).Seconds(),
	})
}

// loadSynthetic builds a graph from a generator spec.
func (s *Server) loadSynthetic(r *http.Request) (string, *lagraph.Graph[float64], error) {
	var spec loadSpec
	if err := decodeJSONBody(r, &spec); err != nil {
		return "", nil, err
	}
	if spec.Name == "" {
		return "", nil, errors.New("missing graph name")
	}
	if spec.Scale < 1 || spec.Scale > maxLoadScale {
		return "", nil, fmt.Errorf("scale %d outside [1,%d]", spec.Scale, maxLoadScale)
	}
	if spec.EdgeFactor <= 0 {
		spec.EdgeFactor = 8
	}
	var e *gen.EdgeList
	switch strings.ToLower(spec.Class) {
	case "kron":
		e = gen.Kron(spec.Scale, spec.EdgeFactor, spec.Seed)
	case "urand":
		e = gen.Urand(spec.Scale, spec.EdgeFactor, spec.Seed)
	case "twitter":
		e = gen.Twitter(spec.Scale, spec.EdgeFactor, spec.Seed)
	case "web":
		e = gen.Web(spec.Scale, spec.EdgeFactor, spec.Seed)
	case "road":
		e = gen.Road(1<<(spec.Scale/2), spec.Seed)
	default:
		return "", nil, fmt.Errorf("unknown graph class %q (kron|urand|twitter|web|road)", spec.Class)
	}
	if spec.Weights {
		lo, hi := spec.WeightLo, spec.WeightHi
		if lo <= 0 || hi < lo {
			lo, hi = 1, 255 // the GAP SSSP convention
		}
		e.AddUniformWeights(spec.Seed+17, lo, hi)
	}
	g, err := graphFromEdgeList(e)
	return spec.Name, g, err
}

func graphFromEdgeList(e *gen.EdgeList) (*lagraph.Graph[float64], error) {
	ptr, idx, vals := e.CSR()
	A, err := grb.ImportCSR(e.N, e.N, ptr, idx, vals, false)
	if err != nil {
		return nil, err
	}
	kind := lagraph.AdjacencyUndirected
	if e.Directed {
		kind = lagraph.AdjacencyDirected
	}
	return lagraph.New(&A, kind)
}

// loadUpload reads a Matrix Market or binary matrix from the request body.
func (s *Server) loadUpload(r *http.Request, format string) (string, *lagraph.Graph[float64], error) {
	q := r.URL.Query()
	name := q.Get("name")
	if name == "" {
		return "", nil, errors.New("missing ?name= for upload")
	}
	kind := lagraph.AdjacencyDirected
	switch strings.ToLower(q.Get("kind")) {
	case "", "directed":
	case "undirected":
		kind = lagraph.AdjacencyUndirected
	default:
		return "", nil, fmt.Errorf("unknown kind %q (directed|undirected)", q.Get("kind"))
	}
	var (
		A   *grb.Matrix[float64]
		err error
	)
	if format == "mm" {
		A, err = lagraph.MMRead(r.Body)
	} else {
		A, err = lagraph.BinRead(r.Body)
	}
	if err != nil {
		return "", nil, err
	}
	g, err := lagraph.New(&A, kind)
	if err != nil {
		return "", nil, err
	}
	// An undirected load asserts a symmetric pattern; verify rather than
	// trust the caller (CheckGraph is the paper's safety valve for the
	// non-opaque graph).
	if kind == lagraph.AdjacencyUndirected {
		if err := g.CheckGraph(); err != nil {
			return "", nil, fmt.Errorf("undirected upload rejected: %w", err)
		}
	}
	return name, g, nil
}

func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	list := s.reg.List()
	if t := requestTenant(r); t != nil {
		kept := list[:0]
		for _, gi := range list {
			if name, ok := t.Strip(gi.Name); ok {
				gi.Name = name
				kept = append(kept, gi)
			}
		}
		list = kept
	}
	writeJSON(w, http.StatusOK, map[string]any{"graphs": list})
}

func (s *Server) handleGetGraph(w http.ResponseWriter, r *http.Request) {
	display := r.PathValue("name")
	if info, ok := s.reg.Info(scopeGraph(r, display)); ok {
		info.Name = display
		writeJSON(w, http.StatusOK, info)
		return
	}
	writeError(w, http.StatusNotFound, fmt.Sprintf("graph %q not found", display))
}

func (s *Server) handleDeleteGraph(w http.ResponseWriter, r *http.Request) {
	display := r.PathValue("name")
	name := scopeGraph(r, display)
	if err := s.reg.Remove(name); err != nil {
		writeRegistryError(w, r, err)
		return
	}
	// Version keys make the dead graph's cached results unreachable;
	// dropping them eagerly returns their memory too. (The stream engine
	// drops its delta state — and the durable store its on-disk state —
	// through the registry's removal listeners.)
	s.jobs.InvalidateGraph(name)
	writeJSON(w, http.StatusOK, map[string]string{"deleted": display})
}

// writeRegistryError maps registry failures onto HTTP statuses. Messages
// are built around engine-wide (tenant-scoped) names; strip the
// requester's namespace so tenants read the names they sent.
func writeRegistryError(w http.ResponseWriter, r *http.Request, err error) {
	msg := stripMessage(r, err.Error())
	switch {
	case errors.Is(err, registry.ErrNotFound):
		writeError(w, http.StatusNotFound, msg)
	case errors.Is(err, registry.ErrExists):
		writeError(w, http.StatusConflict, msg)
	case errors.Is(err, registry.ErrNoCapacity):
		writeError(w, http.StatusInsufficientStorage, msg)
	default:
		writeError(w, http.StatusInternalServerError, msg)
	}
}
