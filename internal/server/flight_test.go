package server

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"lagraph/internal/algo"
	"lagraph/internal/obs"
	"lagraph/internal/registry"
	"lagraph/internal/store"
)

// failingCatalog is Builtin plus a kernel that always errors — the
// job-failure trigger's fuel.
func failingCatalog(t *testing.T) *algo.Catalog {
	t.Helper()
	c := algo.Builtin()
	c.MustRegister(algo.Descriptor{
		Name: "fail.always",
		Tier: algo.TierAdvanced,
		Doc:  "test kernel: always fails",
		Run: func(context.Context, *algo.Graph, algo.Params) (algo.Result, error) {
			return nil, errors.New("kernel exploded")
		},
	})
	return c
}

// incidentKinds polls GET /debug/incidents until every wanted kind is
// retained (trigger hooks run just off the state mutex, so the capture
// can trail the observable state change by a beat).
func incidentKinds(t *testing.T, base string, want ...string) map[string]map[string]any {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body := doJSON(t, "GET", base+"/debug/incidents", nil)
		if code != http.StatusOK {
			t.Fatalf("GET /debug/incidents: %d", code)
		}
		byKind := map[string]map[string]any{}
		for _, raw := range body["incidents"].([]any) {
			inc := raw.(map[string]any)
			byKind[inc["kind"].(string)] = inc
		}
		missing := false
		for _, k := range want {
			if _, ok := byKind[k]; !ok {
				missing = true
			}
		}
		if !missing {
			return byKind
		}
		if time.Now().After(deadline) {
			t.Fatalf("incidents %v never all captured; have %v", want, body["incidents"])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFlightRecorderE2E is the acceptance scenario (run under -race in
// CI): a slow query, a failing job and a saturated queue each freeze the
// flight ring into an incident; /debug/incidents serves them,
// /debug/incidents/{id} serves a full capture with profile summaries,
// /healthz flips its queue component while the queue is full, and
// /debug/bundle ships a well-formed tar.gz holding logs, traces, metric
// snapshots and a goroutine summary.
func TestFlightRecorderE2E(t *testing.T) {
	reg := registry.New(0)
	srv := New(reg, Options{
		Workers:        1,
		QueueDepth:     1,
		SlowThreshold:  time.Nanosecond, // every request is a slow query
		IncidentWindow: time.Hour,
		Catalog:        failingCatalog(t),
	})
	ts := newHTTPServer(t, srv)

	loadSyntheticGraph(t, ts, "g", "kron", 5)

	// Slow query: the load itself crossed the 1ns threshold. Every later
	// request folds into the same incident — the debounce window is an
	// hour — so exactly one slow_query incident exists all test long.
	incidentKinds(t, ts, "slow_query")

	// Job failure.
	code, job := doJSON(t, "POST", ts+"/graphs/g/jobs", map[string]any{"algorithm": "fail.always"})
	if code != http.StatusAccepted {
		t.Fatalf("submit failing job: %d %v", code, job)
	}
	pollJob(t, ts, job["id"].(string), func(s string) bool { return s == "failed" })
	incidentKinds(t, ts, "job_failure")

	// Queue saturation: one never-converging job occupies the single
	// worker, a second fills the depth-1 queue, the third bounces 429.
	code, j1 := doJSON(t, "POST", ts+"/graphs/g/jobs", map[string]any{
		"algorithm": "pagerank", "params": neverConverges,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit blocker: %d %v", code, j1)
	}
	pollJob(t, ts, j1["id"].(string), func(s string) bool { return s == "running" })
	code, j2 := doJSON(t, "POST", ts+"/graphs/g/jobs", map[string]any{
		"algorithm": "pagerank", "params": map[string]any{"tol": -1.0, "max_iter": 1 << 29},
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit queued job: %d %v", code, j2)
	}
	code, body := doJSON(t, "POST", ts+"/graphs/g/jobs", map[string]any{
		"algorithm": "pagerank", "params": map[string]any{"tol": -1.0, "max_iter": 1 << 28},
	})
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow submission: %d %v, want 429", code, body)
	}
	byKind := incidentKinds(t, ts, "slow_query", "job_failure", "queue_saturated")

	// With the queue full, /healthz degrades and names the component.
	code, health := doJSON(t, "GET", ts+"/healthz", nil)
	if code != http.StatusServiceUnavailable || health["status"] != "degraded" {
		t.Fatalf("healthz under saturation: %d %v", code, health)
	}
	comps := health["components"].(map[string]any)
	queue := comps["queue"].(map[string]any)
	if queue["ready"] != false || queue["detail"] == "" {
		t.Fatalf("queue component under saturation: %v", queue)
	}
	if comps["compactor"].(map[string]any)["ready"] != true {
		t.Fatalf("compactor component: %v", comps)
	}

	// The readiness gauges agree with the body.
	scrape := getBody(t, ts+"/metrics")
	if !strings.Contains(scrape, `component_ready{component="queue"} 0`) {
		t.Error("/metrics missing component_ready{queue} 0 during saturation")
	}
	if !strings.Contains(scrape, `component_ready{component="compactor"} 1`) {
		t.Error("/metrics missing component_ready{compactor} 1")
	}
	if !strings.Contains(scrape, "go_goroutines") || !strings.Contains(scrape, "incidents_total") {
		t.Error("/metrics missing runtime or recorder families")
	}

	// Drain the queue; /healthz recovers.
	for _, j := range []map[string]any{j1, j2} {
		if code, _ := doJSON(t, "DELETE", ts+"/jobs/"+j["id"].(string), nil); code != http.StatusOK {
			t.Fatalf("cancel %v: %d", j["id"], code)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, _ = doJSON(t, "GET", ts+"/healthz", nil)
		if code == http.StatusOK || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code != http.StatusOK {
		t.Fatalf("healthz never recovered after drain: %d", code)
	}

	// One full capture: the slow-query incident carries logs? (no logger
	// wired here), traces, at least one metric snapshot, and profile
	// summaries. Its debounce folded every later slow request.
	slow := byKind["slow_query"]
	code, inc := doJSON(t, "GET", ts+"/debug/incidents/"+slow["id"].(string), nil)
	if code != http.StatusOK {
		t.Fatalf("GET incident: %d %v", code, inc)
	}
	if n := inc["goroutines"].(map[string]any)["count"].(float64); n <= 0 {
		t.Fatalf("goroutine summary count = %v", n)
	}
	if snaps := inc["metric_snapshots"].([]any); len(snaps) == 0 {
		t.Fatal("incident has no metric snapshots")
	}
	if traces := inc["traces"]; traces == nil {
		t.Fatal("incident has no trace capture")
	}
	if co := slow["coalesced"].(float64); co < 1 {
		t.Fatalf("slow_query coalesced = %v, want >= 1 (every request was slow)", co)
	}
	if _, ok := inc["heap"].(map[string]any)["sys_bytes"]; !ok {
		t.Fatalf("heap summary missing: %v", inc["heap"])
	}

	// Unknown incident id → 404.
	if code, _ := doJSON(t, "GET", ts+"/debug/incidents/inc-999999", nil); code != http.StatusNotFound {
		t.Fatalf("unknown incident: %d, want 404", code)
	}

	// The bundle: one GET, a complete offline-diagnosis kit.
	files := fetchBundle(t, ts)
	for _, name := range []string{
		"bundle/build.json", "bundle/metrics.prom", "bundle/healthz.json",
		"bundle/incidents.json", "bundle/traces.json", "bundle/goroutines.txt",
	} {
		if _, ok := files[name]; !ok {
			t.Fatalf("bundle missing %s; has %v", name, keys(files))
		}
	}
	exp, err := obs.ValidateExposition(bytes.NewReader(files["bundle/metrics.prom"]))
	if err != nil {
		t.Fatalf("bundle metrics snapshot rejected by strict parser: %v", err)
	}
	if _, ok := exp.Types["incidents_total"]; !ok {
		t.Error("bundle scrape missing incidents_total")
	}
	var incidents []map[string]any
	if err := json.Unmarshal(files["bundle/incidents.json"], &incidents); err != nil {
		t.Fatalf("bundle incidents.json: %v", err)
	}
	kinds := map[string]bool{}
	for _, inc := range incidents {
		kinds[inc["kind"].(string)] = true
	}
	for _, k := range []string{"slow_query", "job_failure", "queue_saturated"} {
		if !kinds[k] {
			t.Errorf("bundle incidents.json missing kind %s (has %v)", k, kinds)
		}
	}
	if !bytes.Contains(files["bundle/goroutines.txt"], []byte("goroutine profile")) {
		t.Error("bundle goroutines.txt is not a goroutine profile dump")
	}
	var build map[string]any
	if err := json.Unmarshal(files["bundle/build.json"], &build); err != nil || build["go_version"] == "" {
		t.Fatalf("bundle build.json: %v %v", err, build)
	}
}

// TestHealthzStoreComponentFlips boots a durable server, then destroys
// its data directory out from under it: the store component must flip to
// not-ready (and /healthz to 503) before any WAL append discovers the
// problem the hard way.
func TestHealthzStoreComponentFlips(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(store.Options{Dir: dir, Fsync: false})
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New(0)
	srv := New(reg, Options{Store: st, IncidentWindow: time.Hour})
	ts := newHTTPServer(t, srv)

	code, health := doJSON(t, "GET", ts+"/healthz", nil)
	if code != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthy daemon: %d %v", code, health)
	}
	comps := health["components"].(map[string]any)
	for _, name := range []string{"store", "queue", "compactor"} {
		c, ok := comps[name].(map[string]any)
		if !ok || c["ready"] != true {
			t.Fatalf("component %s not ready on a healthy daemon: %v", name, comps)
		}
	}

	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	code, health = doJSON(t, "GET", ts+"/healthz", nil)
	if code != http.StatusServiceUnavailable || health["status"] != "degraded" {
		t.Fatalf("healthz with destroyed data dir: %d %v", code, health)
	}
	st2 := health["components"].(map[string]any)["store"].(map[string]any)
	if st2["ready"] != false || !strings.Contains(st2["detail"].(string), "not writable") {
		t.Fatalf("store component after destruction: %v", st2)
	}
	if !strings.Contains(getBody(t, ts+"/metrics"), `component_ready{component="store"} 0`) {
		t.Error("/metrics component_ready{store} still 1 after data-dir destruction")
	}
}

// TestDebugEndpointsWithRecorderDisabled pins the -incident-window 0
// surface: incidents report enabled=false, incident lookups 404, and the
// bundle still works (scrape, traces, build info — just no incidents).
func TestDebugEndpointsWithRecorderDisabled(t *testing.T) {
	ts, _ := newTestServer(t, 0)

	code, body := doJSON(t, "GET", ts.URL+"/debug/incidents", nil)
	if code != http.StatusOK || body["enabled"] != false || body["count"].(float64) != 0 {
		t.Fatalf("incidents with recorder off: %d %v", code, body)
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/debug/incidents/inc-000001", nil); code != http.StatusNotFound {
		t.Fatalf("incident lookup with recorder off: %d, want 404", code)
	}
	files := fetchBundle(t, ts.URL)
	var incidents []any
	if err := json.Unmarshal(files["bundle/incidents.json"], &incidents); err != nil || len(incidents) != 0 {
		t.Fatalf("disabled-recorder bundle incidents: %v %v", err, incidents)
	}
	if _, err := obs.ValidateExposition(bytes.NewReader(files["bundle/metrics.prom"])); err != nil {
		t.Fatalf("disabled-recorder bundle scrape: %v", err)
	}
}

// TestTracesLimitDefaultAndCap pins the /debug/traces listing bounds:
// the default applies without ?limit=, explicit limits are capped, and
// non-positive or garbage limits are rejected.
func TestTracesLimitDefaultAndCap(t *testing.T) {
	ts, _ := newTestServer(t, 0)

	code, body := doJSON(t, "GET", ts.URL+"/debug/traces", nil)
	if code != http.StatusOK || body["limit"].(float64) != defaultTraceLimit {
		t.Fatalf("default limit: %d %v", code, body["limit"])
	}
	code, body = doJSON(t, "GET", ts.URL+"/debug/traces?limit=100000", nil)
	if code != http.StatusOK || body["limit"].(float64) != maxTraceLimit {
		t.Fatalf("capped limit: %d %v", code, body["limit"])
	}
	for _, bad := range []string{"0", "-3", "abc"} {
		if code, _ := doJSON(t, "GET", ts.URL+"/debug/traces?limit="+bad, nil); code != http.StatusBadRequest {
			t.Fatalf("limit=%s: %d, want 400", bad, code)
		}
	}
}

// fetchBundle GETs /debug/bundle and unpacks the tar.gz into a
// name→content map.
func fetchBundle(t *testing.T, base string) map[string][]byte {
	t.Helper()
	resp, err := http.Get(base + "/debug/bundle")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/bundle: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/gzip" {
		t.Fatalf("bundle Content-Type = %q", ct)
	}
	gz, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatalf("bundle is not gzip: %v", err)
	}
	tr := tar.NewReader(gz)
	files := map[string][]byte{}
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("bundle tar: %v", err)
		}
		b, err := io.ReadAll(tr)
		if err != nil {
			t.Fatalf("bundle entry %s: %v", hdr.Name, err)
		}
		files[hdr.Name] = b
	}
	return files
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func keys(m map[string][]byte) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
