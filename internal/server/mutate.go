package server

import (
	"errors"
	"net/http"
	"time"

	"lagraph/internal/registry"
	"lagraph/internal/stream"
)

// Streaming mutation API:
//
//	POST /graphs/{name}/edges
//	{"ops": [
//	  {"op": "upsert", "src": 0, "dst": 3, "weight": 2.5},
//	  {"op": "delete", "src": 1, "dst": 2}
//	]}
//
// The batch is atomic (any invalid operation rejects the whole batch) and
// publishes a new copy-on-write snapshot of the graph: in-flight jobs keep
// reading the snapshot they started on, the result cache re-keys under the
// bumped registry version, and new submissions see the mutated graph.
// Undirected graphs mirror every operation so the pattern stays symmetric.

// mutateSpec is the JSON body of POST /graphs/{name}/edges.
type mutateSpec struct {
	Ops []stream.Op `json:"ops"`
}

// mutateResponse wraps the stream result with the request timing.
type mutateResponse struct {
	stream.Result
	Seconds float64 `json:"seconds"`
}

// handleMutateGraph is POST /graphs/{name}/edges.
func (s *Server) handleMutateGraph(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	display := r.PathValue("name")
	// Mutation batches are bulk traffic like uploads, not parameter
	// bodies: give them the upload budget.
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxUploadBytes)
	var spec mutateSpec
	if err := decodeJSONBody(r, &spec); err != nil {
		writeBodyError(w, err)
		return
	}
	res, err := s.stream.ApplyCtx(r.Context(), scopeGraph(r, display), spec.Ops)
	if err != nil {
		writeMutateError(w, r, err)
		return
	}
	res.Graph = display
	writeJSON(w, http.StatusOK, mutateResponse{
		Result:  res,
		Seconds: time.Since(start).Seconds(),
	})
}

// writeMutateError maps mutation failures onto HTTP statuses.
func writeMutateError(w http.ResponseWriter, r *http.Request, err error) {
	msg := stripMessage(r, err.Error())
	switch {
	case errors.Is(err, stream.ErrBatchTooLarge):
		writeError(w, http.StatusRequestEntityTooLarge, msg)
	case errors.Is(err, stream.ErrBadBatch):
		writeError(w, http.StatusBadRequest, msg)
	case errors.Is(err, stream.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, msg)
	case errors.Is(err, registry.ErrConflict):
		writeError(w, http.StatusConflict, msg)
	case errors.Is(err, registry.ErrNotFound),
		errors.Is(err, registry.ErrNoCapacity),
		errors.Is(err, registry.ErrClosed):
		writeRegistryError(w, r, err)
	default:
		writeError(w, http.StatusInternalServerError, msg)
	}
}
