package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"lagraph/internal/algo"
	"lagraph/internal/registry"
	"lagraph/internal/tenant"
)

// End-to-end multi-tenant admission tests: bearer auth, namespace
// isolation, quotas, priority classes, and 429/413 semantics — all over
// the real handler stack, run under -race by CI.

const testTokens = `{"tenants":[
	{"name":"acme","tokens":["tok-a"],"default_priority":"interactive"},
	{"name":"globex","tokens":["tok-b"]}
]}`

func tenantConfig(t *testing.T, raw string) *tenant.Config {
	t.Helper()
	cfg, err := tenant.Parse([]byte(raw))
	if err != nil {
		t.Fatalf("tenant.Parse: %v", err)
	}
	return cfg
}

func newTenantServer(t *testing.T, opts Options) *httptest.Server {
	t.Helper()
	if opts.Tenants == nil {
		opts.Tenants = tenantConfig(t, testTokens)
	}
	reg := registry.New(0)
	srv := New(reg, opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	return ts
}

// doAuth is doJSON with a bearer token and the response headers.
func doAuth(t *testing.T, method, url, token string, body any) (int, map[string]any, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	out := map[string]any{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && err != io.EOF {
		t.Fatalf("%s %s: decode: %v", method, url, err)
	}
	return resp.StatusCode, out, resp.Header
}

func loadTenantGraph(t *testing.T, base, token, name string, scale int) {
	t.Helper()
	code, body, _ := doAuth(t, "POST", base+"/graphs", token, map[string]any{
		"name": name, "class": "kron", "scale": scale, "edge_factor": 4, "seed": 42,
	})
	if code != http.StatusCreated {
		t.Fatalf("load %s: status %d, body %v", name, code, body)
	}
}

func TestTenantAuth(t *testing.T) {
	ts := newTenantServer(t, Options{})

	// Data plane: no token, junk tokens, and wrong schemes are all 401
	// with a challenge; nothing leaks about why.
	for _, token := range []string{"", "nope", "tok-a-but-wrong"} {
		code, body, hdr := doAuth(t, "GET", ts.URL+"/graphs", token, nil)
		if code != http.StatusUnauthorized {
			t.Fatalf("token %q: status %d, want 401 (body %v)", token, code, body)
		}
		if !strings.Contains(hdr.Get("WWW-Authenticate"), "Bearer") {
			t.Fatalf("token %q: missing WWW-Authenticate challenge", token)
		}
	}
	if code, _, _ := doAuth(t, "GET", ts.URL+"/algorithms", "", nil); code != 401 {
		t.Fatalf("catalog without token: %d, want 401", code)
	}

	// A valid token works.
	if code, _, _ := doAuth(t, "GET", ts.URL+"/graphs", "tok-a", nil); code != 200 {
		t.Fatalf("valid token: %d, want 200", code)
	}

	// Operator plane stays open: health, stats, and metrics must answer
	// when token distribution itself is what broke.
	for _, path := range []string{"/healthz", "/stats", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil || resp.StatusCode != 200 {
			t.Fatalf("operator plane %s: %v %d", path, err, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// The unauthorized probes above are visible in the admission metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(raw), `tenant_admission_total{tenant="unknown",outcome="unauthorized"} 4`) {
		t.Fatalf("metrics missing unauthorized admissions:\n%s", raw)
	}
}

func TestTenantIsolation(t *testing.T) {
	ts := newTenantServer(t, Options{})

	// Both tenants own a graph named "g" — same display name, no clash.
	loadTenantGraph(t, ts.URL, "tok-a", "g", 5)
	loadTenantGraph(t, ts.URL, "tok-b", "g", 6)

	// Each sees exactly its own, under its own name.
	for _, tc := range []struct {
		token string
		nodes float64
	}{{"tok-a", 32}, {"tok-b", 64}} {
		code, body, _ := doAuth(t, "GET", ts.URL+"/graphs", tc.token, nil)
		graphs := body["graphs"].([]any)
		if code != 200 || len(graphs) != 1 {
			t.Fatalf("%s list: %d, %v", tc.token, code, body)
		}
		g0 := graphs[0].(map[string]any)
		if g0["name"] != "g" || g0["nodes"].(float64) != tc.nodes {
			t.Fatalf("%s list entry: %v", tc.token, g0)
		}
	}

	// acme runs a job on its g; globex cannot see it by id, in the list,
	// by result/report, nor cancel it — all indistinguishable from a job
	// that never existed.
	code, body, _ := doAuth(t, "POST", ts.URL+"/graphs/g/jobs", "tok-a",
		map[string]any{"algorithm": "pagerank"})
	if code != http.StatusAccepted {
		t.Fatalf("acme submit: %d %v", code, body)
	}
	if body["graph"] != "g" {
		t.Fatalf("acme job record leaks scoped name: %v", body["graph"])
	}
	id := body["id"].(string)
	for _, probe := range []struct{ method, path string }{
		{"GET", "/jobs/" + id},
		{"GET", "/jobs/" + id + "/result"},
		{"GET", "/jobs/" + id + "/report"},
		{"DELETE", "/jobs/" + id},
	} {
		if code, body, _ := doAuth(t, probe.method, ts.URL+probe.path, "tok-b", nil); code != 404 {
			t.Fatalf("globex %s %s: %d %v, want 404", probe.method, probe.path, code, body)
		}
	}
	_, body, _ = doAuth(t, "GET", ts.URL+"/jobs", "tok-b", nil)
	if jobs := body["jobs"].([]any); len(jobs) != 0 {
		t.Fatalf("globex job list sees acme's jobs: %v", jobs)
	}
	// The owner still can.
	if code, body, _ := doAuth(t, "GET", ts.URL+"/jobs/"+id, "tok-a", nil); code != 200 || body["graph"] != "g" {
		t.Fatalf("acme get job: %d %v", code, body)
	}

	// Cross-tenant graph access: read, mutate, run, delete all 404.
	loadTenantGraph(t, ts.URL, "tok-a", "private", 5)
	for _, probe := range []struct {
		method, path string
		payload      any
	}{
		{"GET", "/graphs/private", nil},
		{"DELETE", "/graphs/private", nil},
		{"POST", "/graphs/private/edges", map[string]any{"ops": []any{map[string]any{"op": "upsert", "src": 0, "dst": 1}}}},
		{"POST", "/graphs/private/algorithms/pagerank", map[string]any{}},
		{"POST", "/graphs/private/jobs", map[string]any{"algorithm": "pagerank"}},
	} {
		code, body, _ := doAuth(t, probe.method, ts.URL+probe.path, "tok-b", probe.payload)
		if code != 404 {
			t.Fatalf("globex %s %s: %d %v, want 404", probe.method, probe.path, code, body)
		}
		// Scoped engine names must not leak through error messages.
		if msg, _ := body["error"].(string); strings.Contains(msg, "acme/") || strings.Contains(msg, "globex/") {
			t.Fatalf("globex %s %s: error leaks scoped name: %q", probe.method, probe.path, msg)
		}
	}

	// Deleting your own graph under its display name works.
	if code, body, _ := doAuth(t, "DELETE", ts.URL+"/graphs/private", "tok-a", nil); code != 200 || body["deleted"] != "private" {
		t.Fatalf("acme delete: %d %v", code, body)
	}
}

func TestTenantGraphQuota(t *testing.T) {
	cfg := tenantConfig(t, `{"tenants":[
		{"name":"acme","tokens":["tok-a"],"max_graphs":1},
		{"name":"globex","tokens":["tok-b"]}
	]}`)
	ts := newTenantServer(t, Options{Tenants: cfg})

	loadTenantGraph(t, ts.URL, "tok-a", "one", 5)
	code, body, _ := doAuth(t, "POST", ts.URL+"/graphs", "tok-a", map[string]any{
		"name": "two", "class": "kron", "scale": 5, "edge_factor": 4,
	})
	if code != http.StatusInsufficientStorage {
		t.Fatalf("over-quota load: %d %v, want 507", code, body)
	}
	// The error names the exhausted quota and the numbers.
	msg, _ := body["error"].(string)
	for _, frag := range []string{"max_graphs", "limit 1", `"acme"`} {
		if !strings.Contains(msg, frag) {
			t.Fatalf("quota error %q does not name %q", msg, frag)
		}
	}
	// globex (no quota) is unaffected.
	loadTenantGraph(t, ts.URL, "tok-b", "one", 5)
	loadTenantGraph(t, ts.URL, "tok-b", "two", 5)

	// Releasing the slot restores admission.
	if code, _, _ := doAuth(t, "DELETE", ts.URL+"/graphs/one", "tok-a", nil); code != 200 {
		t.Fatalf("delete: %d", code)
	}
	loadTenantGraph(t, ts.URL, "tok-a", "two", 5)
}

// blockingCatalog registers a kernel that parks until release is closed,
// so tests can pin workers and stage queue states deterministically.
func blockingCatalog(t *testing.T) (*algo.Catalog, func()) {
	t.Helper()
	gate := make(chan struct{})
	c := algo.Builtin()
	c.MustRegister(algo.Descriptor{
		Name: "test.block",
		Tier: algo.TierAdvanced,
		Doc:  "test kernel: parks until the test releases it",
		Params: []algo.Spec{
			{Name: "id", Type: algo.TInt, Default: 0, Doc: "dedup buster"},
		},
		Run: func(ctx context.Context, _ *algo.Graph, _ algo.Params) (algo.Result, error) {
			select {
			case <-gate:
				return algo.Result{"ok": true}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	released := false
	return c, func() {
		if !released {
			released = true
			close(gate)
		}
	}
}

func TestTenantJobQuotaAnd429(t *testing.T) {
	cfg := tenantConfig(t, `{"tenants":[
		{"name":"acme","tokens":["tok-a"],"max_queued_jobs":1},
		{"name":"globex","tokens":["tok-b"]}
	]}`)
	catalog, release := blockingCatalog(t)
	defer release()
	ts := newTenantServer(t, Options{Tenants: cfg, Catalog: catalog, Workers: 1, QueueDepth: 2})
	loadTenantGraph(t, ts.URL, "tok-a", "g", 5)
	loadTenantGraph(t, ts.URL, "tok-b", "g", 5)

	submit := func(token string, id int) (int, map[string]any, http.Header) {
		return doAuth(t, "POST", ts.URL+"/graphs/g/jobs", token,
			map[string]any{"algorithm": "test.block", "params": map[string]any{"id": id}})
	}
	// First job occupies the single worker; acme may queue one more.
	if code, body, _ := submit("tok-a", 1); code != http.StatusAccepted {
		t.Fatalf("job 1: %d %v", code, body)
	}
	if code, body, _ := submit("tok-a", 2); code != http.StatusAccepted {
		t.Fatalf("job 2: %d %v", code, body)
	}
	// Third acme submission breaches max_queued_jobs: 429 + Retry-After,
	// error naming the quota.
	code, body, hdr := submit("tok-a", 3)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: %d %v, want 429", code, body)
	}
	ra, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 120 {
		t.Fatalf("quota 429 Retry-After = %q, want integer in [1,120]", hdr.Get("Retry-After"))
	}
	msg, _ := body["error"].(string)
	for _, frag := range []string{"max_queued_jobs", `"acme"`} {
		if !strings.Contains(msg, frag) {
			t.Fatalf("quota error %q does not name %q", msg, frag)
		}
	}

	// globex still has queue room: acme's quota is not global backpressure.
	if code, body, _ := submit("tok-b", 1); code != http.StatusAccepted {
		t.Fatalf("globex submit: %d %v", code, body)
	}

	// Now the shared queue is full (depth 3): even globex gets the
	// saturation 429, also with Retry-After.
	code, body, hdr = submit("tok-b", 2)
	if code != http.StatusTooManyRequests {
		t.Fatalf("saturated submit: %d %v, want 429", code, body)
	}
	if ra, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || ra < 1 || ra > 120 {
		t.Fatalf("saturation 429 Retry-After = %q, want integer in [1,120]", hdr.Get("Retry-After"))
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "queue full") {
		t.Fatalf("saturation error %q does not mention the queue", msg)
	}

	// Admission outcomes all landed in the metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`tenant_admission_total{tenant="acme",outcome="queued"} 2`,
		`tenant_admission_total{tenant="acme",outcome="over_quota"} 1`,
		`tenant_admission_total{tenant="globex",outcome="queued"} 1`,
		`tenant_admission_total{tenant="globex",outcome="rejected"} 1`,
	} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("metrics missing %q:\n%s", want, raw)
		}
	}

	// /stats carries the tenant section with live queue usage.
	_, stats, _ := doAuth(t, "GET", ts.URL+"/stats", "", nil)
	tenants, ok := stats["tenant"].([]any)
	if !ok || len(tenants) != 2 {
		t.Fatalf("/stats tenant section: %v", stats["tenant"])
	}
	acme := tenants[0].(map[string]any)
	if acme["name"] != "acme" || acme["max_queued_jobs"].(float64) != 1 {
		t.Fatalf("acme stats: %v", acme)
	}
	release()
}

func TestTenantPriorityAndDefaultClass(t *testing.T) {
	catalog, release := blockingCatalog(t)
	defer release()
	ts := newTenantServer(t, Options{Catalog: catalog, Workers: 1, QueueDepth: 16})
	loadTenantGraph(t, ts.URL, "tok-a", "g", 5)

	// An invalid priority is rejected up front on both endpoints.
	code, body, _ := doAuth(t, "POST", ts.URL+"/graphs/g/jobs", "tok-a",
		map[string]any{"algorithm": "test.block", "priority": "asap"})
	if code != 400 || !strings.Contains(body["error"].(string), "priority") {
		t.Fatalf("bad async priority: %d %v", code, body)
	}
	code, body, _ = doAuth(t, "POST", ts.URL+"/graphs/g/algorithms/pagerank?priority=asap", "tok-a", nil)
	if code != 400 || !strings.Contains(body["error"].(string), "priority") {
		t.Fatalf("bad sync priority: %d %v", code, body)
	}

	// Valid classes are accepted; acme's default (interactive) applies
	// when the submission names none. The queue drains once released.
	for _, spec := range []map[string]any{
		{"algorithm": "test.block", "params": map[string]any{"id": 1}},
		{"algorithm": "test.block", "params": map[string]any{"id": 2}, "priority": "batch"},
		{"algorithm": "test.block", "params": map[string]any{"id": 3}, "priority": "interactive"},
	} {
		if code, body, _ := doAuth(t, "POST", ts.URL+"/graphs/g/jobs", "tok-a", spec); code != 202 {
			t.Fatalf("submit %v: %d %v", spec, code, body)
		}
	}
	release()
}

// TestSingleTenantModeUnchanged pins the no-auth-tokens regression: no
// Authorization header needed, no tenant section in /stats, and the idle
// jobs stats carry no per-class queue map — the pre-tenancy wire shapes.
func TestSingleTenantModeUnchanged(t *testing.T) {
	ts, _ := newTestServer(t, 0)

	loadSyntheticGraph(t, ts.URL, "g", "kron", 5)
	if code, _ := doJSON(t, "POST", ts.URL+"/graphs/g/algorithms/pagerank", nil); code != 200 {
		t.Fatalf("sync run without auth: %d", code)
	}
	code, stats := doJSON(t, "GET", ts.URL+"/stats", nil)
	if code != 200 {
		t.Fatalf("stats: %d", code)
	}
	if _, present := stats["tenant"]; present {
		t.Fatalf("single-tenant /stats grew a tenant section: %v", stats["tenant"])
	}
	jobsStats := stats["jobs"].(map[string]any)
	if _, present := jobsStats["queued_by_class"]; present {
		t.Fatalf("idle jobs stats grew queued_by_class: %v", jobsStats)
	}
	// Job records carry the original field set — no class/tenant leakage.
	code, body := doJSON(t, "POST", ts.URL+"/graphs/g/jobs", map[string]any{"algorithm": "pagerank"})
	if code != 202 {
		t.Fatalf("submit: %d %v", code, body)
	}
	for _, forbidden := range []string{"class", "tenant", "priority"} {
		if _, present := body[forbidden]; present {
			t.Fatalf("job record grew %q: %v", forbidden, body)
		}
	}
}

// TestOversizedBodies413 covers the shared 413 mapping on all four body
// paths: graph upload (including the Matrix Market scanner path), sync
// algorithm params, job submission, and mutation batches.
func TestOversizedBodies413(t *testing.T) {
	reg := registry.New(0)
	srv := New(reg, Options{MaxUploadBytes: 512, MaxParamsBytes: 128})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	loadSyntheticGraph(t, ts.URL, "g", "kron", 5)

	big := strings.Repeat("x", 1024)
	post := func(path, ctype, body string) int {
		req, err := http.NewRequest("POST", ts.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatalf("NewRequest: %v", err)
		}
		req.Header.Set("Content-Type", ctype)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}

	// Synthetic-spec upload: oversized JSON body.
	if code := post("/graphs", "application/json", `{"name":"`+big+`"}`); code != 413 {
		t.Fatalf("oversized synthetic spec: %d, want 413", code)
	}
	// Matrix Market upload: valid lines, body larger than the cap — the
	// MaxBytesError must survive the mmio scanner (the %w wrap).
	mm := "%%MatrixMarket matrix coordinate real general\n64 64 200\n" +
		strings.Repeat("1 1 1.0\n", 200)
	if code := post("/graphs?format=mm&name=big", "text/plain", mm); code != 413 {
		t.Fatalf("oversized MM upload: %d, want 413", code)
	}
	// Sync algorithm params over the params cap.
	if code := post("/graphs/g/algorithms/pagerank", "application/json", `{"pad":"`+big+`"}`); code != 413 {
		t.Fatalf("oversized sync params: %d, want 413", code)
	}
	// Job submission over the params cap.
	if code := post("/graphs/g/jobs", "application/json", `{"algorithm":"`+big+`"}`); code != 413 {
		t.Fatalf("oversized job spec: %d, want 413", code)
	}
	// Mutation batch over the upload cap — valid JSON throughout, so the
	// decoder reads past the byte cap rather than erroring on syntax.
	ops := strings.Repeat(`{"op":"upsert","src":1,"dst":2},`, 40)
	if code := post("/graphs/g/edges", "application/json", `{"ops":[`+strings.TrimSuffix(ops, ",")+`]}`); code != 413 {
		t.Fatalf("oversized mutation batch: %d, want 413", code)
	}
}
