package server

import (
	"fmt"
	"net/http"
	"time"
)

// Component-level readiness: /healthz is not one boolean but a set of
// probes — job-queue headroom, compactor liveness, durable-store
// writability — each answering "could this subsystem serve the next
// request". The same probes back the component_ready{component} gauge
// family, so an operator's dashboard and a load balancer's health check
// read one definition. A failing probe turns /healthz into 503 with the
// failing component named in the body; the daemon keeps serving (a full
// queue is back-pressure, not death), the caller decides what to do.

// compactorStaleAfter is how long the stream compactor may go without a
// liveness beat before /healthz calls it dead. The compactor beats every
// second while idle and at merge boundaries, so 30s of silence means a
// stuck merge or a lost goroutine, not load.
const compactorStaleAfter = 30 * time.Second

// healthComponent is one named readiness probe.
type healthComponent struct {
	name  string
	probe func() (ok bool, detail string)
}

// addHealth registers a readiness probe and its component_ready series.
func (s *Server) addHealth(name string, probe func() (ok bool, detail string)) {
	s.health = append(s.health, healthComponent{name: name, probe: probe})
	s.readyG.Func(func() float64 {
		if ok, _ := probe(); ok {
			return 1
		}
		return 0
	}, name)
}

// registerHealth wires the built-in component probes. The store
// component only exists on durable servers — a memory-only daemon has no
// WAL directory to go read-only.
func (s *Server) registerHealth() {
	s.readyG = s.obs.GaugeVec("component_ready",
		"Per-component readiness (1 ready, 0 not), matching GET /healthz.", "component")
	s.addHealth("queue", func() (bool, string) {
		queued, depth := s.jobs.QueueHeadroom()
		if queued >= depth {
			return false, fmt.Sprintf("job queue full (%d/%d): submissions answer 429", queued, depth)
		}
		return true, ""
	})
	s.addHealth("compactor", func() (bool, string) {
		return s.stream.CompactorLive(compactorStaleAfter)
	})
	if s.store != nil {
		s.addHealth("store", s.store.Healthy)
	}
	if s.cluster != nil && s.cluster.repl != nil {
		// A follower that cannot reach its leader serves unboundedly
		// stale reads — that is a degradation /healthz must show.
		s.addHealth("replication", s.cluster.repl.Healthy)
	}
}

// componentHealth is one component's /healthz rendering.
type componentHealth struct {
	Ready  bool   `json:"ready"`
	Detail string `json:"detail,omitempty"`
}

// healthzBody is the /healthz payload.
type healthzBody struct {
	Status     string                     `json:"status"` // "ok" | "degraded"
	Components map[string]componentHealth `json:"components"`
}

// handleHealthz is GET /healthz: every component probe runs, the body
// names each component's state, and the status code is 200 only when all
// are ready (503 otherwise, so unmodified load-balancer checks see the
// degradation).
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	body := healthzBody{Status: "ok", Components: make(map[string]componentHealth, len(s.health))}
	code := http.StatusOK
	for _, c := range s.health {
		ok, detail := c.probe()
		body.Components[c.name] = componentHealth{Ready: ok, Detail: detail}
		if !ok {
			body.Status = "degraded"
			code = http.StatusServiceUnavailable
		}
	}
	writeJSON(w, code, body)
}
