// Package server exposes the graph registry as an HTTP/JSON service — the
// lagraphd API. Endpoints:
//
//	POST   /graphs                          load a graph (JSON synthetic spec,
//	                                        Matrix Market or binary upload)
//	GET    /graphs                          list resident graphs
//	GET    /graphs/{name}                   one graph's info
//	DELETE /graphs/{name}                   drop a graph
//	POST   /graphs/{name}/edges             apply a batch of edge mutations
//	POST   /graphs/{name}/algorithms/{alg}  run a catalog algorithm
//	GET    /algorithms                      list the algorithm catalog
//	GET    /algorithms/{name}               one algorithm's descriptor
//	POST   /graphs/{name}/jobs              submit an asynchronous job
//	GET    /jobs                            list jobs
//	GET    /jobs/{id}                       job status
//	GET    /jobs/{id}/result                job result once done
//	GET    /jobs/{id}/report                the run's introspection report
//	DELETE /jobs/{id}                       cancel a job
//	GET    /healthz                         component-level readiness probe
//	GET    /stats                           registry + jobs + server counters
//	GET    /debug/incidents                 flight-recorder incident list
//	GET    /debug/incidents/{id}            one captured incident
//	GET    /debug/bundle                    tar.gz debug bundle (one curl)
//
// Requests against the same graph share its cached properties: the first
// PageRank materializes the transpose and degree vector once (single
// flight), every later call reuses them — visible in /stats as
// property_hits climbing while property_computes stays flat.
//
// All algorithm execution — synchronous and asynchronous — flows through
// one jobs engine (internal/jobs): a worker pool of cancellable jobs with
// single-flight deduplication and a result cache keyed by the graph's
// registry version, so identical requests cost one computation and a
// disconnected synchronous client cancels work nobody will read.
//
// The server carries no per-algorithm code: routing, parameter
// validation, property requirements, cache keying and execution all come
// from the self-describing catalog (internal/algo). Registering a new
// kernel there is the only step needed for it to appear on every
// endpoint above.
package server

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"time"

	"lagraph/internal/algo"
	"lagraph/internal/cluster"
	"lagraph/internal/jobs"
	"lagraph/internal/obs"
	"lagraph/internal/parallel"
	"lagraph/internal/registry"
	"lagraph/internal/store"
	"lagraph/internal/stream"
	"lagraph/internal/tenant"
)

// Options configures the service.
type Options struct {
	// MaxInFlight bounds concurrently served API requests; requests beyond
	// the bound queue until a slot frees or the client gives up. <= 0
	// selects 2 × the parallel worker bound (kernel-level parallelism and
	// request-level parallelism share the same cores).
	MaxInFlight int
	// MaxUploadBytes caps POST /graphs request bodies. <= 0 means 64 MiB.
	MaxUploadBytes int64
	// MaxParamsBytes caps algorithm-parameter and job-submission bodies —
	// tiny JSON objects, not uploads. <= 0 means 1 MiB.
	MaxParamsBytes int64
	// Workers is the jobs-engine worker-pool size — the bound on
	// concurrently executing algorithms. <= 0 selects the parallel worker
	// bound (one algorithm per core set).
	Workers int
	// QueueDepth bounds jobs waiting for a worker. <= 0 means 64.
	QueueDepth int
	// ResultTTL is how long completed algorithm results stay cached for
	// identical resubmissions. <= 0 selects the engine default (5m).
	ResultTTL time.Duration
	// MaxCachedResults bounds the result cache entry count. <= 0 selects
	// the engine default (256).
	MaxCachedResults int
	// JobTimeout is the default per-job deadline when a submission sets
	// none (0 = no deadline).
	JobTimeout time.Duration
	// CompactThreshold is the per-graph delta-log length that triggers a
	// background compaction. <= 0 selects the stream default (4096).
	CompactThreshold int
	// CompactRatio triggers compaction once the delta log reaches this
	// fraction of the base CSR entry count. <= 0 selects the stream
	// default (0.25).
	CompactRatio float64
	// MaxBatchOps bounds one mutation batch. <= 0 selects the stream
	// default (65536).
	MaxBatchOps int
	// Store, when non-nil, makes the service durable: graphs persisted on
	// load, mutation batches write-ahead-logged before publication,
	// compactions checkpointed, deletes mirrored to disk — and New begins
	// by recovering whatever the store already holds into the registry.
	// The server owns the store from here on: Close closes it.
	Store *store.Store
	// Catalog is the algorithm catalog every endpoint dispatches through.
	// Nil selects the shared built-in catalog (algo.Default()); embedders
	// and tests that register extra kernels pass their own (built with
	// algo.Builtin() plus their Register calls).
	Catalog *algo.Catalog
	// Obs is the metrics registry GET /metrics scrapes. Every subsystem's
	// instruments — server, jobs, stream, registry, and (via AddSource)
	// the store's — register here, and /stats reads the same instruments.
	// Nil selects a private registry.
	Obs *obs.Registry
	// Logger receives the structured access log (one record per request,
	// keyed by trace id) and the slow-query log. Nil disables logging.
	Logger *slog.Logger
	// SlowThreshold gates the slow-query log: requests at least this slow
	// log a warning with their span breakdown. 0 disables. With the flight
	// recorder enabled, the same threshold is the slow-query incident
	// trigger.
	SlowThreshold time.Duration
	// TraceCapacity bounds the GET /debug/traces ring. <= 0 means 256.
	TraceCapacity int
	// IncidentWindow enables the flight recorder: the lookback captured
	// into each incident and the per-trigger-kind debounce. <= 0 disables
	// the recorder entirely — the disabled path adds zero allocations to
	// request handling. lagraphd's -incident-window flag defaults to 30s.
	IncidentWindow time.Duration
	// IncidentCapacity bounds retained incidents. <= 0 means 16.
	IncidentCapacity int
	// FsyncAlert triggers a wal_fsync_stall incident when one WAL
	// append+fsync takes at least this long (needs Store and the
	// recorder). 0 disables.
	FsyncAlert time.Duration
	// HeapAlertBytes triggers a heap_watermark incident when the heap
	// high watermark crosses this many bytes (re-firing on each further
	// 10% of growth). 0 disables.
	HeapAlertBytes int64
	// Tenants, when non-nil, switches the service to multi-tenant mode:
	// data-plane requests must carry a bearer token from the config, graph
	// names are namespaced per tenant, and quotas are enforced. Nil keeps
	// the pre-tenancy single-tenant behavior exactly. Built from the
	// -auth-tokens file via tenant.Load.
	Tenants *tenant.Config
	// TenantDefaults carries the daemon-wide quota flags for tenants that
	// set no bound of their own. Ignored when Tenants is nil.
	TenantDefaults tenant.Defaults
	// Cluster joins the node to a leader/follower cluster (see
	// internal/cluster and cluster.go). The zero value (Role unset)
	// keeps single-node behavior byte-identical: no replication routes,
	// no routing wrappers, no cluster section anywhere.
	Cluster cluster.Config
}

// Server is the lagraphd HTTP service.
type Server struct {
	reg     *registry.Registry
	jobs    *jobs.Engine
	stream  *stream.Engine
	store   *store.Store // nil when the service is memory-only
	catalog *algo.Catalog
	tenants *tenant.Facade // nil in single-tenant mode
	cluster *clusterState  // nil in single-node mode
	mux     *http.ServeMux
	sem     chan struct{}
	opts    Options

	obs      *obs.Registry
	tracer   *obs.Tracer
	runtime  *obs.RuntimeSource
	recorder *obs.Recorder // nil when IncidentWindow <= 0

	// Component-level readiness (health.go): probes registered at build
	// time, read by /healthz and the component_ready gauge family.
	health []healthComponent
	readyG *obs.GaugeVec

	started   time.Time
	requests  *obs.Counter // API requests admitted through the limiter
	rejected  *obs.Counter // API requests abandoned while queued
	algErrors *obs.Counter
	httpReqs  *obs.CounterVec   // http_requests_total{route,method,code}
	httpSecs  *obs.HistogramVec // http_request_seconds{route}

	// Per-algorithm run-report aggregates, fed from every kernel's probe.
	algIters     *obs.CounterVec // algorithm_iterations_total{algorithm}
	algConverged *obs.CounterVec // algorithm_converged_total{algorithm,converged}
	algWork      *obs.CounterVec // algorithm_work_total{algorithm,counter}
}

// New builds a Server around an existing registry.
func New(reg *registry.Registry, opts Options) *Server {
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = 2 * parallel.MaxThreads()
	}
	if opts.MaxUploadBytes <= 0 {
		opts.MaxUploadBytes = 64 << 20
	}
	if opts.MaxParamsBytes <= 0 {
		opts.MaxParamsBytes = 1 << 20
	}
	if opts.Workers <= 0 {
		opts.Workers = parallel.MaxThreads()
	}
	if opts.Catalog == nil {
		opts.Catalog = algo.Default()
	}
	if opts.Obs == nil {
		opts.Obs = obs.NewRegistry()
	}
	o := opts.Obs

	// Runtime telemetry always runs (it is scrape-time sampling, not a
	// background cost); the flight recorder only when an incident window
	// is configured. With the recorder off, no trigger callback is
	// installed anywhere — the hot path carries not even a nil check.
	rt := obs.NewRuntimeSource()
	o.AddSource(rt.Registry())
	var recorder *obs.Recorder
	if opts.IncidentWindow > 0 {
		recorder = obs.NewRecorder(obs.RecorderOptions{
			Window:   opts.IncidentWindow,
			Capacity: opts.IncidentCapacity,
			Source:   rt.Snapshot,
			Obs:      o,
		})
	}
	logger := opts.Logger
	if recorder != nil {
		// Tee every slog record through the flight ring on its way to the
		// configured handler, so incidents capture the logs around them.
		var inner slog.Handler
		if logger != nil {
			inner = logger.Handler()
		}
		logger = slog.New(recorder.WrapHandler(inner))
	}

	jobsOpts := jobs.Options{
		Workers:          opts.Workers,
		QueueDepth:       opts.QueueDepth,
		DefaultTimeout:   opts.JobTimeout,
		ResultTTL:        opts.ResultTTL,
		MaxCachedResults: opts.MaxCachedResults,
		Obs:              o,
	}
	if opts.Cluster.Role != cluster.RoleNone {
		// Cluster job ids carry the minting node's address so polls can
		// be routed back to it from any peer.
		jobsOpts.Node = opts.Cluster.Self
	}
	if recorder != nil {
		jobsOpts.OnFailed = func(key jobs.Key, err error) {
			recorder.Trigger(obs.TriggerJobFailure,
				fmt.Sprintf("job %s@v%d/%s failed: %v", key.Graph, key.Version, key.Algorithm, err))
		}
		jobsOpts.OnSaturated = func(queued, depth int) {
			recorder.Trigger(obs.TriggerQueueSaturated,
				fmt.Sprintf("job queue saturated: %d/%d queued, submission rejected with 429", queued, depth))
		}
	}

	tracerOpts := obs.TracerOptions{
		Capacity:      opts.TraceCapacity,
		Logger:        logger,
		SlowThreshold: opts.SlowThreshold,
	}
	if recorder != nil {
		slow := opts.SlowThreshold
		tracerOpts.OnFinish = func(ti obs.TraceInfo) {
			// ti is a value copy cut by Trace.Snapshot, so an incident
			// holding it cannot race the tracer ring's eviction.
			recorder.RecordTrace(ti)
			if slow > 0 && ti.Seconds >= slow.Seconds() {
				recorder.Trigger(obs.TriggerSlowQuery,
					fmt.Sprintf("trace %s (%s) took %.3fs, threshold %s", ti.ID, traceRoute(ti), ti.Seconds, slow))
			}
		}
	}

	s := &Server{
		reg:      reg,
		catalog:  opts.Catalog,
		runtime:  rt,
		recorder: recorder,
		jobs:     jobs.NewEngine(jobsOpts),
		stream: stream.NewEngine(reg, stream.Options{
			CompactThreshold: opts.CompactThreshold,
			CompactRatio:     opts.CompactRatio,
			MaxBatchOps:      opts.MaxBatchOps,
			Obs:              o,
		}),
		store:   opts.Store,
		mux:     http.NewServeMux(),
		sem:     make(chan struct{}, opts.MaxInFlight),
		opts:    opts,
		started: time.Now(),

		obs:       o,
		tracer:    obs.NewTracer(tracerOpts),
		requests:  o.Counter("http_admitted_total", "API requests admitted through the concurrency limiter."),
		rejected:  o.Counter("http_rejected_total", "API requests abandoned while queued for a limiter slot."),
		algErrors: o.Counter("algorithm_errors_total", "Algorithm runs that failed server-side (property or kernel faults)."),
		httpReqs:  o.CounterVec("http_requests_total", "HTTP requests by route, method and status code.", "route", "method", "code"),
		httpSecs:  o.HistogramVec("http_request_seconds", "HTTP request latency by route.", nil, "route"),
		algIters: o.CounterVec("algorithm_iterations_total",
			"Kernel iterations executed (BFS levels, PageRank sweeps, SSSP buckets, FastSV rounds), from run reports.", "algorithm"),
		algConverged: o.CounterVec("algorithm_converged_total",
			"Iterative kernel completions by convergence outcome, from run reports.", "algorithm", "converged"),
		algWork: o.CounterVec("algorithm_work_total",
			"Named kernel work counters (relaxations, nnz processed), from run reports.", "algorithm", "counter"),
	}
	o.GaugeFunc("http_in_flight", "Requests currently holding a limiter slot.",
		func() float64 { return float64(len(s.sem)) })
	o.GaugeFunc("uptime_seconds", "Seconds since the server was built.",
		func() float64 { return time.Since(s.started).Seconds() })
	reg.Instrument(o)
	if s.store != nil {
		// Order matters: recovery replays the WAL through the stream
		// engine while no journal is attached (so the replayed batches are
		// not re-appended), then the journal and the registry delete
		// listener come live, then the periodic checkpointer.
		s.store.RecoverInto(reg, s.stream)
		s.stream.SetJournal(s.store)
		s.store.Attach(reg)
		s.store.StartCheckpointer(reg)
	}
	if s.store != nil {
		// The store predates the server in boot order and owns its private
		// registry; compose it into the scraped exposition.
		o.AddSource(s.store.Obs())
	}
	if recorder != nil {
		if s.store != nil && opts.FsyncAlert > 0 {
			alert := opts.FsyncAlert
			s.store.SetAppendAlert(alert, func(graph string, elapsed time.Duration) {
				recorder.Trigger(obs.TriggerFsyncStall,
					fmt.Sprintf("WAL append+fsync on %q took %s, threshold %s", graph, elapsed, alert))
			})
		}
		if opts.HeapAlertBytes > 0 {
			limit := opts.HeapAlertBytes
			rt.SetHeapAlert(uint64(limit), func(heapBytes uint64) {
				recorder.Trigger(obs.TriggerHeapWatermark,
					fmt.Sprintf("heap high watermark %d bytes crossed alert threshold %d", heapBytes, limit))
			})
		}
		recorder.Start()
	}
	if opts.Tenants != nil {
		s.tenants = tenant.New(opts.Tenants, opts.TenantDefaults, reg, s.jobs, o)
	}
	if opts.Cluster.Role != cluster.RoleNone {
		s.initCluster()
	}
	s.registerHealth()
	// Every route runs inside the instrumented middleware: a trace (id
	// adopted from X-Trace-Id, echoed back), a root span, and the
	// per-route request counter and latency histogram. Data-plane routes
	// additionally run behind the tenanted middleware (the identity in
	// single-tenant mode), inside instrumentation — an unauthorized
	// request is still traced and counted — but outside the limiter, so
	// bad tokens never occupy a concurrency slot.
	// The cluster wrappers (leaderWrite, routedRead, routedJob) sit
	// inside the tenant middleware — an unauthorized request is 401
	// before it learns any topology, and ring placement hashes the same
	// tenant-scoped names every peer uses — and outside the limiter, so
	// a proxied request never holds a local compute slot. Single-node
	// (Options.Cluster unset) every wrapper is the identity.
	s.mux.HandleFunc("POST /graphs", s.instrumented("/graphs", s.tenanted(s.leaderWrite(s.limited(s.handleLoadGraph)))))
	s.mux.HandleFunc("POST /graphs/{name}/edges", s.instrumented("/graphs/{name}/edges", s.tenanted(s.leaderWrite(s.limited(s.handleMutateGraph)))))
	s.mux.HandleFunc("GET /graphs", s.instrumented("/graphs", s.tenanted(s.limited(s.handleListGraphs))))
	s.mux.HandleFunc("GET /graphs/{name}", s.instrumented("/graphs/{name}", s.tenanted(s.routedRead(s.limited(s.handleGetGraph)))))
	s.mux.HandleFunc("DELETE /graphs/{name}", s.instrumented("/graphs/{name}", s.tenanted(s.leaderWrite(s.limited(s.handleDeleteGraph)))))
	s.mux.HandleFunc("POST /graphs/{name}/algorithms/{alg}", s.instrumented("/graphs/{name}/algorithms/{alg}", s.tenanted(s.routedRead(s.limited(s.handleAlgorithm)))))
	s.mux.HandleFunc("POST /graphs/{name}/jobs", s.instrumented("/graphs/{name}/jobs", s.tenanted(s.routedRead(s.limited(s.handleSubmitJob)))))
	// Job polling, cancellation and monitoring bypass the limiter so they
	// answer under load — a client must be able to cancel the very jobs
	// that are saturating the server.
	s.mux.HandleFunc("GET /jobs", s.instrumented("/jobs", s.tenanted(s.handleListJobs)))
	s.mux.HandleFunc("GET /jobs/{id}", s.instrumented("/jobs/{id}", s.tenanted(s.routedJob(s.handleGetJob))))
	s.mux.HandleFunc("GET /jobs/{id}/result", s.instrumented("/jobs/{id}/result", s.tenanted(s.routedJob(s.handleJobResult))))
	s.mux.HandleFunc("GET /jobs/{id}/report", s.instrumented("/jobs/{id}/report", s.tenanted(s.routedJob(s.handleJobReport))))
	s.mux.HandleFunc("DELETE /jobs/{id}", s.instrumented("/jobs/{id}", s.tenanted(s.routedJob(s.handleCancelJob))))
	// Catalog introspection is cheap and read-only; it bypasses the
	// limiter so clients can discover the API even under load.
	s.mux.HandleFunc("GET /algorithms", s.instrumented("/algorithms", s.tenanted(s.handleListAlgorithms)))
	s.mux.HandleFunc("GET /algorithms/{name}", s.instrumented("/algorithms/{name}", s.tenanted(s.handleGetAlgorithm)))
	s.mux.HandleFunc("GET /healthz", s.instrumented("/healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /stats", s.instrumented("/stats", s.handleStats))
	// Telemetry endpoints stay outside their own instrumentation: a scrape
	// must not fill the trace ring, and a broken middleware must not take
	// down the very endpoint used to debug it.
	s.mux.Handle("GET /metrics", o.Handler())
	s.mux.HandleFunc("GET /debug/traces", s.handleListTraces)
	s.mux.HandleFunc("GET /debug/traces/{id}", s.handleGetTrace)
	s.mux.HandleFunc("GET /debug/incidents", s.handleListIncidents)
	s.mux.HandleFunc("GET /debug/incidents/{id}", s.handleGetIncident)
	s.mux.HandleFunc("GET /debug/bundle", s.handleBundle)
	s.registerClusterRoutes()
	s.startCluster()
	return s
}

// Handler returns the root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Jobs exposes the underlying engine (tests and embedding daemons).
func (s *Server) Jobs() *jobs.Engine { return s.jobs }

// Stream exposes the mutation engine (tests and embedding daemons).
func (s *Server) Stream() *stream.Engine { return s.stream }

// Store exposes the durable store (nil when memory-only).
func (s *Server) Store() *store.Store { return s.store }

// Obs exposes the metrics registry GET /metrics scrapes.
func (s *Server) Obs() *obs.Registry { return s.obs }

// Tracer exposes the request tracer backing GET /debug/traces.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// Recorder exposes the flight recorder (nil when IncidentWindow <= 0).
func (s *Server) Recorder() *obs.Recorder { return s.recorder }

// Runtime exposes the Go-runtime telemetry source.
func (s *Server) Runtime() *obs.RuntimeSource { return s.runtime }

// Close stops the jobs and stream engines — running jobs are cancelled,
// workers drain, and pending compactions finish — then closes the store,
// if any. The HTTP handler keeps answering (submissions fail with 503),
// so Close is safe to call before the listener stops.
func (s *Server) Close() {
	if s.cluster != nil && s.cluster.repl != nil {
		s.cluster.repl.Stop() // before the engines it applies batches through
	}
	s.recorder.Stop() // nil-safe; halts the metric-snapshot sampler
	s.jobs.Close()
	s.stream.Close()
	if s.store != nil {
		s.store.Close()
	}
}

// limited wraps a handler with the request-concurrency limiter: a
// semaphore sized to Options.MaxInFlight. A queued request that loses its
// client (context cancelled) is released with 503.
func (s *Server) limited(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
		case <-r.Context().Done():
			s.rejected.Inc()
			writeError(w, http.StatusServiceUnavailable, "server busy, request abandoned while queued")
			return
		}
		defer func() { <-s.sem }()
		s.requests.Inc()
		h(w, r)
	}
}

// serverStats is the /stats payload.
type serverStats struct {
	UptimeSeconds float64        `json:"uptime_seconds"`
	MaxInFlight   int            `json:"max_in_flight"`
	InFlight      int            `json:"in_flight"`
	Requests      int64          `json:"requests"`
	Rejected      int64          `json:"rejected"`
	AlgErrors     int64          `json:"algorithm_errors"`
	Jobs          jobs.Stats     `json:"jobs"`
	Registry      registry.Stats `json:"registry"`
	Stream        stream.Stats   `json:"stream"`
	Store         *store.Stats   `json:"store,omitempty"`   // absent when memory-only
	Tenants       []tenant.Stats `json:"tenant,omitempty"`  // absent in single-tenant mode
	Cluster       *clusterStats  `json:"cluster,omitempty"` // absent in single-node mode
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	var storeStats *store.Stats
	if s.store != nil {
		st := s.store.StatsSnapshot()
		storeStats = &st
	}
	var tenantStats []tenant.Stats
	if s.tenants != nil {
		tenantStats = s.tenants.StatsSnapshot()
	}
	writeJSON(w, http.StatusOK, serverStats{
		Store:         storeStats,
		Tenants:       tenantStats,
		Cluster:       s.clusterStatsSnapshot(),
		UptimeSeconds: time.Since(s.started).Seconds(),
		MaxInFlight:   s.opts.MaxInFlight,
		InFlight:      len(s.sem),
		Requests:      s.requests.Int(),
		Rejected:      s.rejected.Int(),
		AlgErrors:     s.algErrors.Int(),
		Jobs:          s.jobs.StatsSnapshot(),
		Registry:      s.reg.StatsSnapshot(),
		Stream:        s.stream.StatsSnapshot(),
	})
}

// errorBody is the JSON error envelope. Field names the offending
// parameter on algorithm-parameter validation failures.
type errorBody struct {
	Error string `json:"error"`
	Field string `json:"field,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorBody{Error: msg})
}
