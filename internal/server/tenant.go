package server

import (
	"errors"
	"net/http"
	"strconv"
	"strings"

	"lagraph/internal/jobs"
	"lagraph/internal/tenant"
)

// Multi-tenant mode. When Options.Tenants is configured, every
// data-plane route (/graphs*, /jobs*, /algorithms*) runs behind the
// tenanted middleware: the bearer token resolves to a tenant, graph
// names are namespaced `<tenant>/` before they reach the registry, jobs
// engine, or store, and quota checks guard graph loads and job
// submissions. The operator plane (/healthz, /stats, /metrics, /debug/*)
// stays open — it exposes no tenant data beyond aggregate usage and must
// keep answering when token distribution itself is what broke.
//
// Without Options.Tenants every helper here degrades to the identity, so
// single-tenant deployments run the exact pre-tenancy request path.

// tenanted resolves the request's bearer token; unresolved requests are
// refused with 401 before any handler state is touched.
func (s *Server) tenanted(h http.HandlerFunc) http.HandlerFunc {
	if s.tenants == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		t, err := s.tenants.Resolve(r.Header.Get("Authorization"))
		if err != nil {
			s.tenants.Record(tenant.Unknown, tenant.OutcomeUnauthorized)
			w.Header().Set("WWW-Authenticate", `Bearer realm="lagraphd"`)
			writeError(w, http.StatusUnauthorized, "missing or invalid bearer token")
			return
		}
		h(w, r.WithContext(tenant.NewContext(r.Context(), t)))
	}
}

// requestTenant is the request's resolved tenant; nil in single-tenant
// mode (the middleware guarantees it is set whenever tenancy is on).
func requestTenant(r *http.Request) *tenant.Tenant {
	return tenant.FromContext(r.Context())
}

// scopeGraph maps a tenant-visible graph name to the engine-wide name.
func scopeGraph(r *http.Request, name string) string {
	if t := requestTenant(r); t != nil {
		return t.Scope(name)
	}
	return name
}

// record counts an admission outcome for the request's tenant; a no-op
// in single-tenant mode so the default path stays instrument-free.
func (s *Server) record(r *http.Request, outcome string) {
	if t := requestTenant(r); t != nil {
		s.tenants.Record(t.Name, outcome)
	}
}

// setRetryAfter stamps the drain-rate-derived backoff hint every 429
// must carry.
func (s *Server) setRetryAfter(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(s.jobs.RetryAfterHint()))
}

// requestClass resolves a submission's priority class: an explicit
// request value wins, then the tenant's default, then normal.
func requestClass(r *http.Request, explicit string) (jobs.Class, error) {
	if explicit != "" {
		return jobs.ParseClass(explicit)
	}
	if t := requestTenant(r); t != nil {
		return t.DefaultClass, nil
	}
	return jobs.ClassNormal, nil
}

// displayName strips the tenant namespace off an engine-wide graph name
// for response payloads; engine names never leak to tenants.
func displayName(r *http.Request, scoped string) string {
	if t := requestTenant(r); t != nil {
		if name, ok := t.Strip(scoped); ok {
			return name
		}
	}
	return scoped
}

// stripMessage removes the tenant's namespace prefix from an error
// message built around scoped names, so a tenant reads the graph name it
// actually sent.
func stripMessage(r *http.Request, msg string) string {
	if t := requestTenant(r); t != nil {
		return strings.ReplaceAll(msg, t.Name+"/", "")
	}
	return msg
}

// writeBodyError maps a request-body read failure: 413 when the body
// blew through its MaxBytesReader cap, 400 otherwise.
func writeBodyError(w http.ResponseWriter, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		writeError(w, http.StatusRequestEntityTooLarge,
			"request body exceeds "+strconv.FormatInt(mbe.Limit, 10)+" bytes")
		return
	}
	writeError(w, http.StatusBadRequest, err.Error())
}

// jobForRequest fetches a job by path id and enforces tenant ownership.
// A job on another tenant's graph answers 404, indistinguishable from a
// job that never existed — existence itself is tenant data.
func (s *Server) jobForRequest(w http.ResponseWriter, r *http.Request) (*jobs.Job, string, bool) {
	id := r.PathValue("id")
	job, ok := s.jobs.Get(id)
	if ok {
		if t := requestTenant(r); t != nil {
			if _, owned := t.Strip(job.Info().Graph); !owned {
				ok = false
			}
		}
	}
	if !ok {
		writeError(w, http.StatusNotFound, "job "+strconv.Quote(id)+" not found")
		return nil, id, false
	}
	return job, id, true
}
