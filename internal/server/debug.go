package server

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"net/http"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"time"

	"lagraph/internal/obs"
)

// Debug surface: the flight recorder's incidents and the one-curl debug
// bundle. Like /metrics and /debug/traces, these routes stay outside the
// instrumented middleware — the endpoint used to diagnose a broken
// middleware must not run through it, and reading incidents must not
// fill the trace ring.

// handleListIncidents is GET /debug/incidents: retained incident
// summaries, newest first. A server built without a recorder
// (-incident-window 0) reports enabled=false and an empty list rather
// than 404, so probing scripts need no flag knowledge.
func (s *Server) handleListIncidents(w http.ResponseWriter, _ *http.Request) {
	incidents := s.recorder.Incidents() // nil-safe: nil recorder → nil
	if incidents == nil {
		incidents = []obs.IncidentSummary{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled":   s.recorder != nil,
		"count":     len(incidents),
		"incidents": incidents,
	})
}

// handleGetIncident is GET /debug/incidents/{id}: one full capture.
func (s *Server) handleGetIncident(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.recorder == nil {
		writeError(w, http.StatusNotFound, "flight recorder disabled (-incident-window 0)")
		return
	}
	inc, ok := s.recorder.Incident(id)
	if !ok {
		writeError(w, http.StatusNotFound, "incident "+id+" not found (evicted or never captured)")
		return
	}
	writeJSON(w, http.StatusOK, inc)
}

// bundleBuildInfo is the bundle's build.json: enough to reproduce the
// binary and its observability configuration offline.
type bundleBuildInfo struct {
	GoVersion     string            `json:"go_version"`
	OS            string            `json:"os"`
	Arch          string            `json:"arch"`
	GOMAXPROCS    int               `json:"gomaxprocs"`
	Module        string            `json:"module,omitempty"`
	VCSRevision   string            `json:"vcs_revision,omitempty"`
	VCSTime       string            `json:"vcs_time,omitempty"`
	UptimeSeconds float64           `json:"uptime_seconds"`
	BundledAt     time.Time         `json:"bundled_at"`
	Config        map[string]string `json:"config"`
}

// handleBundle is GET /debug/bundle: one tar.gz holding everything an
// offline diagnosis needs — build and flag info, the current metrics
// scrape, every retained incident, the recent trace ring, component
// health, and a fresh goroutine dump. Works with the recorder disabled
// (incidents.json is then an empty list).
func (s *Server) handleBundle(w http.ResponseWriter, _ *http.Request) {
	now := time.Now()

	var scrape bytes.Buffer
	_ = s.obs.WritePrometheus(&scrape)

	var goroutines bytes.Buffer
	if p := pprof.Lookup("goroutine"); p != nil {
		_ = p.WriteTo(&goroutines, 1)
	}

	health := healthzBody{Status: "ok", Components: make(map[string]componentHealth, len(s.health))}
	for _, c := range s.health {
		ok, detail := c.probe()
		health.Components[c.name] = componentHealth{Ready: ok, Detail: detail}
		if !ok {
			health.Status = "degraded"
		}
	}

	incidents := s.recorder.Dump()
	if incidents == nil {
		incidents = []obs.Incident{}
	}

	info := bundleBuildInfo{
		GoVersion:     runtime.Version(),
		OS:            runtime.GOOS,
		Arch:          runtime.GOARCH,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		UptimeSeconds: now.Sub(s.started).Seconds(),
		BundledAt:     now.UTC(),
		Config: map[string]string{
			"incident_window":   s.opts.IncidentWindow.String(),
			"incident_capacity": itoaDefault(s.opts.IncidentCapacity, 16),
			"slow_query":        s.opts.SlowThreshold.String(),
			"fsync_alert":       s.opts.FsyncAlert.String(),
			"durable":           boolStr(s.store != nil),
			"workers":           itoaDefault(s.opts.Workers, 0),
		},
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		info.Module = bi.Main.Path
		for _, st := range bi.Settings {
			switch st.Key {
			case "vcs.revision":
				info.VCSRevision = st.Value
			case "vcs.time":
				info.VCSTime = st.Value
			}
		}
	}

	w.Header().Set("Content-Type", "application/gzip")
	w.Header().Set("Content-Disposition",
		`attachment; filename="lagraphd-bundle-`+now.UTC().Format("20060102T150405Z")+`.tar.gz"`)
	gz := gzip.NewWriter(w)
	tw := tar.NewWriter(gz)
	addJSON := func(name string, v any) {
		b, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			return
		}
		addFile(tw, name, b, now)
	}
	addJSON("bundle/build.json", info)
	addFile(tw, "bundle/metrics.prom", scrape.Bytes(), now)
	addJSON("bundle/healthz.json", health)
	if cs := s.clusterStatsSnapshot(); cs != nil {
		// Role, peers, and per-graph replicated versions + lag: an
		// incident captured on a follower is diagnosable offline.
		addJSON("bundle/cluster.json", cs)
	}
	addJSON("bundle/incidents.json", incidents)
	addJSON("bundle/traces.json", s.tracer.Traces(maxTraceLimit))
	addFile(tw, "bundle/goroutines.txt", goroutines.Bytes(), now)
	_ = tw.Close()
	_ = gz.Close()
}

// addFile writes one regular file entry into the bundle.
func addFile(tw *tar.Writer, name string, b []byte, at time.Time) {
	_ = tw.WriteHeader(&tar.Header{
		Name:    name,
		Mode:    0o644,
		Size:    int64(len(b)),
		ModTime: at,
	})
	_, _ = tw.Write(b)
}

func itoaDefault(v, def int) string {
	if v <= 0 {
		v = def
	}
	return strconv.Itoa(v)
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}
