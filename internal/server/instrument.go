package server

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"lagraph/internal/obs"
)

// Request instrumentation: every API route runs inside instrumented(),
// which opens a trace (adopting the client's X-Trace-Id when one is
// proposed, echoing the final id back), wraps the handler in a root span,
// and feeds the per-route Prometheus series. Handlers and the jobs they
// submit add child spans — parse, property materialization, kernel run,
// WAL append — through the context; finished traces are served by
// GET /debug/traces and GET /debug/traces/{id}.

// statusWriter captures the response status code for the request metrics
// and the root span.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.code = http.StatusOK
		w.wrote = true
	}
	return w.ResponseWriter.Write(b)
}

// instrumented wraps a route handler with tracing and request metrics.
// route is the registered pattern without the method (the label shared by
// http_requests_total and http_request_seconds), so the series stay
// bounded no matter what paths clients invent.
func (s *Server) instrumented(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tr := s.tracer.Start(r.Header.Get("X-Trace-Id"))
		w.Header().Set("X-Trace-Id", tr.ID())
		ctx := obs.NewContext(r.Context(), tr)
		ctx, root := obs.StartSpan(ctx, "http "+r.Method+" "+route,
			obs.String("route", route), obs.String("method", r.Method))
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h(sw, r.WithContext(ctx))
		elapsed := time.Since(start)
		code := strconv.Itoa(sw.code)
		root.SetAttr("code", code)
		root.End()
		tr.Finish()
		s.httpReqs.With(route, r.Method, code).Inc()
		s.httpSecs.With(route).Observe(elapsed.Seconds())
	}
}

// Trace-listing bounds: without ?limit= the newest defaultTraceLimit
// traces render; explicit limits are clamped to maxTraceLimit. Rendering
// the whole ring (up to -trace-capacity snapshots, each with its span
// tree) on every curl made the endpoint its own slow query.
const (
	defaultTraceLimit = 64
	maxTraceLimit     = 256
)

// handleListTraces is GET /debug/traces: the finished-trace ring, newest
// first, at most ?limit entries (default 64, capped at 256), optionally
// restricted to one registered route with ?route= (matched against the
// root span's route attribute) so the bounded ring stays usable on a
// busy daemon.
func (s *Server) handleListTraces(w http.ResponseWriter, r *http.Request) {
	limit := defaultTraceLimit
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("limit must be a positive integer (default %d, max %d)", defaultTraceLimit, maxTraceLimit))
			return
		}
		limit = min(n, maxTraceLimit)
	}
	route := r.URL.Query().Get("route")
	var traces []obs.TraceInfo
	if route == "" {
		traces = s.tracer.Traces(limit)
	} else {
		// Filter before applying the limit, so ?route=&limit= returns up to
		// limit matching traces, not the matches among the newest limit.
		for _, tr := range s.tracer.Traces(0) {
			if traceRoute(tr) != route {
				continue
			}
			traces = append(traces, tr)
			if len(traces) == limit {
				break
			}
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"started": s.tracer.Started(),
		"limit":   limit,
		"count":   len(traces),
		"traces":  traces,
	})
}

// traceRoute extracts the root span's route attribute ("" when absent).
func traceRoute(tr obs.TraceInfo) string {
	if len(tr.Spans) == 0 {
		return ""
	}
	for _, a := range tr.Spans[0].Attrs {
		if a.Key == "route" {
			return a.Value
		}
	}
	return ""
}

// handleGetTrace is GET /debug/traces/{id}: one ringed trace by id.
func (s *Server) handleGetTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	info, ok := s.tracer.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "trace "+strconv.Quote(id)+" not found (expired from the ring or never finished)")
		return
	}
	writeJSON(w, http.StatusOK, info)
}
