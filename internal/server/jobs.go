package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"lagraph/internal/algo"
	"lagraph/internal/jobs"
	"lagraph/internal/lagraph"
	"lagraph/internal/obs"
	"lagraph/internal/registry"
	"lagraph/internal/tenant"
)

// Asynchronous jobs API:
//
//	POST   /graphs/{name}/jobs   submit an algorithm job (202 + job record)
//	GET    /jobs                 list retained jobs, newest first
//	GET    /jobs/{id}            one job's status
//	GET    /jobs/{id}/result     the result once the job is done
//	GET    /jobs/{id}/report     the run's introspection report once done
//	DELETE /jobs/{id}            cancel (queued jobs die instantly; running
//	                             jobs stop at their next iteration check)
//
// Submissions are deduplicated against in-flight jobs and completed
// results by (graph, graph version, algorithm, params); the synchronous
// /algorithms endpoints ride the same engine, so a burst of identical
// requests — sync, async or mixed — costs one computation.

// jobSpec is the JSON body of POST /graphs/{name}/jobs. Params are an
// open JSON object validated against the algorithm's catalog schema.
type jobSpec struct {
	Algorithm      string         `json:"algorithm"`
	Params         map[string]any `json:"params"`
	TimeoutSeconds float64        `json:"timeout_seconds"` // 0 = server default
	// Priority selects the admission class (interactive | normal |
	// batch); empty inherits the tenant's default, or normal.
	Priority string `json:"priority"`
}

// maxJobTimeout bounds client-requested deadlines.
const maxJobTimeout = time.Hour

// submitAlgorithmJob leases the named graph, keys the work by its current
// version and the schema-normalized canonical params, and submits it to
// the engine. pin marks an asynchronous submission (the job survives with
// no waiter attached). The lease is held for the job's whole life — a
// resident graph cannot be evicted out from under a queued job — and
// released by the engine at any terminal state, including cancellation
// before the job ever ran.
//
// ctx carries the submitting request's trace; the Run closure re-attaches
// it to the worker's context so the property-materialization and
// kernel-run spans land on the submitter's trace. A deduplicated
// submission runs under the trace of whichever request created the job.
func (s *Server) submitAlgorithmJob(r *http.Request, display string, d *algo.Descriptor, p algo.Params, pin bool, timeout time.Duration, class jobs.Class) (*jobs.Job, error) {
	tr := obs.FromContext(r.Context())
	name := scopeGraph(r, display)
	lease, err := s.reg.Acquire(name)
	if err != nil {
		return nil, err
	}
	entry := lease.Entry()
	g := lease.Graph()
	key := jobs.Key{
		Graph:     name,
		Version:   entry.Version(),
		Algorithm: d.Name,
		Params:    p.Canonical(),
	}
	req := jobs.Request{
		Key:     key,
		Pin:     pin,
		Timeout: timeout,
		Class:   class,
		OnDone:  lease.Release,
	}
	if t := requestTenant(r); t != nil {
		req.Tenant = t.Name
		req.MaxQueued = t.MaxQueuedJobs
		req.MaxRunning = t.MaxRunningJobs
	}
	req.Run = func(ctx context.Context) (any, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// The worker's context is not the request's: re-attach the
		// submitter's trace so the spans below land on it.
		ctx = obs.NewContext(ctx, tr)
		// EnsureProperties also finalizes a streamed-in snapshot's
		// pending deltas before any kernel reads the matrix structure.
		pctx, psp := obs.StartSpan(ctx, "properties", obs.String("graph", name))
		pstart := time.Now()
		err := entry.EnsureProperties(d.RequiredProperties(g)...)
		propSecs := time.Since(pstart).Seconds()
		psp.End()
		if err != nil {
			s.algErrors.Inc()
			// A property materialization failing is a server-side
			// fault, not a bad request; tag it so the HTTP layer
			// reports 500 (the pre-engine behavior).
			return nil, fmt.Errorf("%w: %w", errInternalFailure, err)
		}
		resp := &algoResponse{Graph: display, Algorithm: d.Name}
		// Every service run carries a probe: the report feeds the
		// explain surfaces, the per-algorithm metrics and the tracer.
		prb := lagraph.NewProbe(0)
		kctx, ksp := obs.StartSpan(pctx, "kernel:"+d.Name)
		kctx = lagraph.WithProbe(kctx, prb)
		start := time.Now()
		res, err := d.Run(kctx, g, p)
		resp.Seconds = time.Since(start).Seconds()
		resp.Result = res
		rep := algo.NewReport(d.Name, prb, propSecs, resp.Seconds)
		for _, ev := range rep.SpanEvents() {
			ksp.SetAttr(ev[0], ev[1])
		}
		ksp.SetAttr("iterations", strconv.Itoa(rep.Iterations))
		ksp.End()
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				s.algErrors.Inc()
			}
			return nil, err
		}
		if err := res.CheckReserved(); err != nil {
			// A kernel colliding with the envelope is a registration
			// bug, not a bad request: fail loudly as a 500 instead of
			// silently clobbering the kernel's output.
			s.algErrors.Inc()
			return nil, fmt.Errorf("%w: %w", errInternalFailure, err)
		}
		resp.Report = rep
		s.recordReport(rep)
		entry.CountAlgRun()
		return resp, nil
	}
	job, _, err := s.jobs.Submit(req)
	if err != nil {
		lease.Release() // Submit failed: the engine never took ownership
		return nil, err
	}
	return job, nil
}

// writeSubmitError maps submission failures onto HTTP statuses. Both
// saturation (queue full) and an exhausted tenant job quota answer 429,
// and every 429 carries the drain-rate-derived Retry-After hint.
func (s *Server) writeSubmitError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case algo.IsUnknown(err):
		writeError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, jobs.ErrTenantQuota):
		s.record(r, tenant.OutcomeOverQuota)
		s.setRetryAfter(w)
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, jobs.ErrQueueFull):
		s.record(r, tenant.OutcomeRejected)
		s.setRetryAfter(w)
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, jobs.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, registry.ErrNotFound), errors.Is(err, registry.ErrClosed):
		writeRegistryError(w, r, err)
	default:
		writeError(w, http.StatusBadRequest, err.Error())
	}
}

// handleSubmitJob is POST /graphs/{name}/jobs.
func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxParamsBytes)
	var spec jobSpec
	if err := decodeJSONBody(r, &spec); err != nil {
		writeBodyError(w, err)
		return
	}
	if spec.Algorithm == "" {
		writeError(w, http.StatusBadRequest, "missing algorithm")
		return
	}
	if spec.TimeoutSeconds < 0 {
		writeError(w, http.StatusBadRequest, "timeout_seconds must be >= 0")
		return
	}
	class, err := requestClass(r, spec.Priority)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	d, err := s.catalog.Lookup(spec.Algorithm)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	p, err := d.Validate(spec.Params)
	if err != nil {
		writeValidationError(w, err)
		return
	}
	// Clamp before converting: a huge float would overflow the int64
	// Duration to a negative value, which the engine reads as "no
	// deadline" — an escape hatch from the operator's -job-timeout.
	if spec.TimeoutSeconds > maxJobTimeout.Seconds() {
		spec.TimeoutSeconds = maxJobTimeout.Seconds()
	}
	timeout := time.Duration(spec.TimeoutSeconds * float64(time.Second))
	job, err := s.submitAlgorithmJob(r, name, d, p, true, timeout, class)
	if err != nil {
		s.writeSubmitError(w, r, err)
		return
	}
	s.record(r, tenant.OutcomeQueued)
	writeJSON(w, http.StatusAccepted, displayInfo(r, job.Info()))
}

// displayInfo strips the tenant namespace from a job record before it
// goes on the wire.
func displayInfo(r *http.Request, in jobs.Info) jobs.Info {
	in.Graph = displayName(r, in.Graph)
	return in
}

// handleListJobs is GET /jobs: a tenant sees only jobs on its own
// graphs, under its own names.
func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	list := s.jobs.List()
	if t := requestTenant(r); t != nil {
		kept := list[:0]
		for _, in := range list {
			if name, ok := t.Strip(in.Graph); ok {
				in.Graph = name
				kept = append(kept, in)
			}
		}
		list = kept
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": list})
}

// handleGetJob is GET /jobs/{id}.
func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	job, _, ok := s.jobForRequest(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, displayInfo(r, job.Info()))
}

// handleJobResult is GET /jobs/{id}/result: the full algorithm response
// once the job is done; 409 with the job record while it is still queued
// or running; 410 after cancellation; the mapped algorithm error after a
// failure.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	job, id, ok := s.jobForRequest(w, r)
	if !ok {
		return
	}
	info := job.Info()
	switch info.State {
	case jobs.StateDone:
		v, _ := job.Result()
		writeJSON(w, http.StatusOK, v)
	case jobs.StateCancelled:
		writeError(w, http.StatusGone, fmt.Sprintf("job %q was cancelled", id))
	case jobs.StateFailed:
		s.writeJobOutcome(w, job)
	default:
		writeJSON(w, http.StatusConflict, displayInfo(r, info))
	}
}

// recordReport feeds a finished run's report aggregates into the metrics
// registry: iteration totals, convergence outcomes and named work
// counters, all labelled by algorithm.
func (s *Server) recordReport(rep *algo.RunReport) {
	if rep == nil {
		return
	}
	s.algIters.With(rep.Algorithm).Add(float64(rep.Iterations))
	if rep.Converged != nil {
		s.algConverged.With(rep.Algorithm, strconv.FormatBool(*rep.Converged)).Inc()
	}
	for name, v := range rep.Counters {
		s.algWork.With(rep.Algorithm, name).Add(float64(v))
	}
}

// handleJobReport is GET /jobs/{id}/report: the run's introspection
// report once the job is done. The report is part of the cached immutable
// response, so deduplicated and cache-served jobs report the original
// computation.
func (s *Server) handleJobReport(w http.ResponseWriter, r *http.Request) {
	job, id, ok := s.jobForRequest(w, r)
	if !ok {
		return
	}
	info := job.Info()
	switch info.State {
	case jobs.StateDone:
		v, _ := job.Result()
		resp, ok := v.(*algoResponse)
		if !ok || resp.Report == nil {
			writeError(w, http.StatusNotFound, fmt.Sprintf("job %q has no run report", id))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"graph":  resp.Graph,
			"job":    id,
			"report": resp.Report,
		})
	case jobs.StateCancelled:
		writeError(w, http.StatusGone, fmt.Sprintf("job %q was cancelled", id))
	case jobs.StateFailed:
		s.writeJobOutcome(w, job)
	default:
		writeJSON(w, http.StatusConflict, displayInfo(r, info))
	}
}

// handleCancelJob is DELETE /jobs/{id}. Cancellation is idempotent: a
// terminal job is returned as-is. Ownership is checked before the cancel
// so one tenant cannot kill another's work by guessing ids.
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	_, id, ok := s.jobForRequest(w, r)
	if !ok {
		return
	}
	job, err := s.jobs.Cancel(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, displayInfo(r, job.Info()))
}
