package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lagraph/internal/cluster"
	"lagraph/internal/grb"
	"lagraph/internal/registry"
	"lagraph/internal/store"
)

// Two-process cluster e2e: a leader and a follower, each a full handler
// stack over its own data directory, wired through real TCP listeners
// (the cluster config needs addresses before the servers exist, so the
// listeners are allocated first and handed to httptest).

// clusterNode is one booted node.
type clusterNode struct {
	ts   *httptest.Server
	srv  *Server
	addr string // advertised host:port
	dir  string
}

func (n *clusterNode) url() string { return "http://" + n.addr }

// kill drops the node without any orderly shutdown beyond closing its
// sockets — the two-process analogue of the store suite's crash().
func (n *clusterNode) kill() {
	n.ts.Close()
	n.srv.Close()
}

// listenLoopback reserves an address for a node before it boots.
func listenLoopback(t *testing.T) (net.Listener, string) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	return l, l.Addr().String()
}

// bootClusterNode starts a node on l with its cluster config, recovering
// whatever dir holds. testPoll keeps convergence waits short.
const testPoll = 20 * time.Millisecond

func bootClusterNode(t *testing.T, dir string, l net.Listener, cfg cluster.Config) *clusterNode {
	t.Helper()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("cluster config: %v", err)
	}
	st, err := store.Open(store.Options{Dir: dir, Fsync: true})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	reg := registry.New(0)
	// Compaction off: a leader checkpoint that truncates the WAL past a
	// downed follower's cursor forces a (correct) re-bootstrap, and the
	// restart-resume test needs the tail to stay servable instead.
	srv := New(reg, Options{Store: st, Cluster: cfg, CompactThreshold: 1 << 20, CompactRatio: 1e9})
	ts := httptest.NewUnstartedServer(srv.Handler())
	ts.Listener.Close()
	ts.Listener = l
	ts.Start()
	return &clusterNode{ts: ts, srv: srv, addr: cfg.Self, dir: dir}
}

// bootPair starts a fresh leader+follower pair on new directories.
func bootPair(t *testing.T) (leader, follower *clusterNode) {
	t.Helper()
	ll, laddr := listenLoopback(t)
	fl, faddr := listenLoopback(t)
	leader = bootClusterNode(t, t.TempDir(), ll, cluster.Config{
		Role: cluster.RoleLeader, Self: laddr, Peers: []string{laddr, faddr}, Poll: testPoll,
	})
	t.Cleanup(leader.kill)
	follower = bootClusterNode(t, t.TempDir(), fl, cluster.Config{
		Role: cluster.RoleFollower, Self: faddr, Leader: laddr, Poll: testPoll,
	})
	t.Cleanup(follower.kill)
	return leader, follower
}

// doLocal issues a request with the routed header set, pinning it to the
// receiving node (no ring forwarding) — how the tests observe one node's
// local state.
func doLocal(t *testing.T, method, url string, body any) (int, map[string]any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(cluster.HeaderRouted, "test")
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	out := map[string]any{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && err != io.EOF {
		t.Fatalf("%s %s: decode: %v", method, url, err)
	}
	return resp.StatusCode, out
}

// waitFollowerAt polls the follower's local view until the graph reports
// exactly the wanted registry version.
func waitFollowerAt(t *testing.T, follower *clusterNode, graph string, version float64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		code, info := doLocal(t, "GET", follower.url()+"/graphs/"+graph, nil)
		if code == 200 && info["version"].(float64) == version {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never reached %s@v%v (last: HTTP %d %v)", graph, version, code, info)
		}
		time.Sleep(testPoll)
	}
}

// nodeFingerprint serializes a node's finalized adjacency for
// byte-identity checks (tests run in-package, so the registry is
// reachable directly).
func nodeFingerprint(t *testing.T, n *clusterNode, name string) (uint64, []byte) {
	t.Helper()
	lease, err := n.srv.reg.Acquire(name)
	if err != nil {
		t.Fatalf("Acquire %s on %s: %v", name, n.addr, err)
	}
	defer lease.Release()
	e := lease.Entry()
	e.EnsureFinalized()
	var buf bytes.Buffer
	if err := grb.SerializeMatrix(&buf, e.Graph().A); err != nil {
		t.Fatal(err)
	}
	return e.Version(), buf.Bytes()
}

// clusterSection digs the cluster section out of a node's /stats.
func clusterSection(t *testing.T, n *clusterNode) map[string]any {
	t.Helper()
	code, stats := doLocal(t, "GET", n.url()+"/stats", nil)
	if code != 200 {
		t.Fatalf("stats: HTTP %d", code)
	}
	cs, ok := stats["cluster"].(map[string]any)
	if !ok {
		t.Fatalf("stats has no cluster section: %v", stats)
	}
	return cs
}

func mutateOn(t *testing.T, base, graph string, ops []map[string]any) float64 {
	t.Helper()
	code, body := doLocal(t, "POST", base+"/graphs/"+graph+"/edges", map[string]any{"ops": ops})
	if code != 200 {
		t.Fatalf("mutate %s: HTTP %d: %v", graph, code, body)
	}
	return body["version"].(float64)
}

func TestClusterReplicationConvergence(t *testing.T) {
	leader, follower := bootPair(t)

	// Load on the leader, mutate it through a few versions.
	loadSyntheticGraph(t, leader.url(), "g", "kron", 6)
	v := mutateOn(t, leader.url(), "g", []map[string]any{
		{"op": "upsert", "src": 0, "dst": 50, "weight": 2.5},
		{"op": "delete", "src": 0, "dst": 1},
	})
	v = mutateOn(t, leader.url(), "g", []map[string]any{
		{"op": "upsert", "src": 3, "dst": 40},
	})
	if v != 3 {
		t.Fatalf("leader at v%v, want 3", v)
	}

	// The follower converges to the *exact* leader version, byte-identical.
	waitFollowerAt(t, follower, "g", v)
	lv, lbytes := nodeFingerprint(t, leader, "g")
	fv, fbytes := nodeFingerprint(t, follower, "g")
	if lv != fv {
		t.Fatalf("versions diverge: leader %d, follower %d", lv, fv)
	}
	if !bytes.Equal(lbytes, fbytes) {
		t.Fatalf("replicated graph not byte-identical (%d vs %d bytes)", len(lbytes), len(fbytes))
	}

	// An algorithm run on the follower matches the leader's bit for bit —
	// same version, same kernel, same floats.
	params := map[string]any{"max_iter": 25}
	code, lres := doLocal(t, "POST", leader.url()+"/graphs/g/algorithms/pagerank", params)
	if code != 200 {
		t.Fatalf("leader pagerank: HTTP %d: %v", code, lres)
	}
	code, fres := doLocal(t, "POST", follower.url()+"/graphs/g/algorithms/pagerank", params)
	if code != 200 {
		t.Fatalf("follower pagerank: HTTP %d: %v", code, fres)
	}
	lranks, _ := json.Marshal(lres["ranks"])
	franks, _ := json.Marshal(fres["ranks"])
	if !bytes.Equal(lranks, franks) {
		t.Fatal("follower pagerank differs from leader's")
	}

	// The follower's stats publish per-graph replication progress.
	cs := clusterSection(t, follower)
	if cs["role"] != "follower" {
		t.Fatalf("follower role = %v", cs["role"])
	}
	repl := cs["replication"].(map[string]any)
	graphs := repl["graphs"].([]any)
	if len(graphs) != 1 {
		t.Fatalf("replication graphs = %v", graphs)
	}
	g0 := graphs[0].(map[string]any)
	if g0["name"] != "g" || g0["version"].(float64) != v || g0["lag_batches"].(float64) != 0 {
		t.Fatalf("replication status = %v", g0)
	}
	if repl["bootstraps"].(float64) != 1 {
		t.Fatalf("bootstraps = %v, want exactly 1", repl["bootstraps"])
	}

	// Leader-side service counters moved.
	lcs := clusterSection(t, leader)
	if lcs["role"] != "leader" || lcs["checkpoint_ships"].(float64) < 1 {
		t.Fatalf("leader cluster stats = %v", lcs)
	}

	// Writes on the follower are refused with 421 naming the leader.
	req, _ := http.NewRequest("POST", follower.url()+"/graphs/g/edges",
		strings.NewReader(`{"ops":[{"op":"upsert","src":1,"dst":2}]}`))
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("follower write: HTTP %d, want 421", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); !strings.Contains(loc, leader.addr) {
		t.Fatalf("421 Location %q does not name the leader %s", loc, leader.addr)
	}

	// A delete on the leader propagates: the follower drops the graph.
	if code, _ := doLocal(t, "DELETE", leader.url()+"/graphs/g", nil); code != 200 {
		t.Fatalf("leader delete: HTTP %d", code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if code, _ := doLocal(t, "GET", follower.url()+"/graphs/g", nil); code == 404 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never dropped the deleted graph")
		}
		time.Sleep(testPoll)
	}
}

func TestClusterFollowerRestartResumesWithoutRebootstrap(t *testing.T) {
	leader, follower := bootPair(t)
	loadSyntheticGraph(t, leader.url(), "g", "urand", 6)
	mutateOn(t, leader.url(), "g", []map[string]any{{"op": "upsert", "src": 1, "dst": 2}})
	waitFollowerAt(t, follower, "g", 2)

	// Kill the follower mid-stream while the leader keeps mutating: churn
	// before, during and after the outage.
	var churnV float64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			churnV = mutateOn(t, leader.url(), "g", []map[string]any{
				{"op": "upsert", "src": i % 60, "dst": (i * 7) % 60, "weight": float64(i)},
				{"op": "delete", "src": (i + 1) % 60, "dst": (i * 3) % 60},
			})
			time.Sleep(2 * time.Millisecond)
		}
	}()
	time.Sleep(10 * testPoll) // let some churn replicate
	followerAddr := follower.addr
	followerDir := follower.dir
	follower.kill()
	time.Sleep(5 * testPoll) // more churn lands while the follower is down

	// Reboot the follower on the same directory and address.
	fl, err := net.Listen("tcp", followerAddr)
	if err != nil {
		t.Fatalf("relisten %s: %v", followerAddr, err)
	}
	follower2 := bootClusterNode(t, followerDir, fl, cluster.Config{
		Role: cluster.RoleFollower, Self: followerAddr, Leader: leader.addr, Poll: testPoll,
	})
	t.Cleanup(follower2.kill)

	close(stop)
	wg.Wait()

	waitFollowerAt(t, follower2, "g", churnV)
	lv, lbytes := nodeFingerprint(t, leader, "g")
	fv, fbytes := nodeFingerprint(t, follower2, "g")
	if lv != fv || !bytes.Equal(lbytes, fbytes) {
		t.Fatalf("post-restart divergence: leader v%d/%dB, follower v%d/%dB",
			lv, len(lbytes), fv, len(fbytes))
	}

	// The restarted follower recovered from its own journal and resumed
	// the tail — zero checkpoint re-ships, zero bootstraps.
	repl := clusterSection(t, follower2)["replication"].(map[string]any)
	if repl["bootstraps"].(float64) != 0 {
		t.Fatalf("restarted follower re-bootstrapped %v times, want 0", repl["bootstraps"])
	}
	if repl["applied_batches"].(float64) == 0 {
		t.Fatal("restarted follower applied no batches — it should have caught up over the tail")
	}
}

func TestClusterEpochResyncAfterRecreate(t *testing.T) {
	leader, follower := bootPair(t)
	loadSyntheticGraph(t, leader.url(), "g", "kron", 5)
	mutateOn(t, leader.url(), "g", []map[string]any{{"op": "upsert", "src": 1, "dst": 2}})
	waitFollowerAt(t, follower, "g", 2)
	repl := clusterSection(t, follower)["replication"].(map[string]any)
	oldEpoch := repl["graphs"].([]any)[0].(map[string]any)["epoch"].(string)

	// Delete the graph, then restart the leader and recreate the same
	// name: the fresh registry's version counter restarts, so the new
	// incarnation reuses version numbers 1 and 2 that the follower already
	// holds — the one case where versions alone cannot tell two logs
	// apart. Only the epoch can force the re-bootstrap.
	if code, _ := doLocal(t, "DELETE", leader.url()+"/graphs/g", nil); code != 200 {
		t.Fatal("leader delete failed")
	}
	leaderAddr, leaderDir := leader.addr, leader.dir
	leader.kill()
	ll, err := net.Listen("tcp", leaderAddr)
	if err != nil {
		t.Fatalf("relisten %s: %v", leaderAddr, err)
	}
	leader2 := bootClusterNode(t, leaderDir, ll, cluster.Config{
		Role: cluster.RoleLeader, Self: leaderAddr,
		Peers: []string{leaderAddr, follower.addr}, Poll: testPoll,
	})
	t.Cleanup(leader2.kill)
	loadSyntheticGraph(t, leader2.url(), "g", "urand", 6) // different content, same versions
	mutateOn(t, leader2.url(), "g", []map[string]any{{"op": "upsert", "src": 0, "dst": 9, "weight": 4}})

	// The follower must converge onto the new incarnation — new epoch,
	// version 2 again, byte-identical to the recreated graph.
	deadline := time.Now().Add(15 * time.Second)
	for {
		repl = clusterSection(t, follower)["replication"].(map[string]any)
		if gs, ok := repl["graphs"].([]any); ok && len(gs) == 1 {
			g0 := gs[0].(map[string]any)
			if g0["epoch"].(string) != oldEpoch && g0["version"].(float64) == 2 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never adopted the new incarnation: %v", repl)
		}
		time.Sleep(testPoll)
	}
	lv, lbytes := nodeFingerprint(t, leader2, "g")
	fv, fbytes := nodeFingerprint(t, follower, "g")
	if lv != fv || !bytes.Equal(lbytes, fbytes) {
		t.Fatalf("post-recreate divergence: leader v%d, follower v%d", lv, fv)
	}
	if b := repl["bootstraps"].(float64); b != 2 {
		t.Fatalf("bootstraps = %v, want 2 (initial + epoch resync)", b)
	}
}

func TestClusterReadRoutingAndJobRouting(t *testing.T) {
	leader, follower := bootPair(t)
	loadSyntheticGraph(t, leader.url(), "g", "kron", 5)
	waitFollowerAt(t, follower, "g", 1)

	ring := cluster.NewRing([]string{leader.addr, follower.addr})
	owner := ring.Owner("g")
	nonOwner := leader
	if owner == leader.addr {
		nonOwner = follower
	}

	// A read landing on the non-owner is forwarded to the ring owner and
	// still answers 200 — the client never sees the topology.
	code, info := doJSON(t, "GET", nonOwner.url()+"/graphs/g", nil)
	if code != 200 || info["name"] != "g" {
		t.Fatalf("routed read: HTTP %d %v", code, info)
	}
	if cs := clusterSection(t, nonOwner); cs["proxied_requests"].(float64) < 1 {
		t.Fatalf("non-owner proxied nothing: %v", cs)
	}

	// Async jobs: ids minted on a node carry "@addr", and polling any
	// other node forwards to the owner.
	code, sub := doLocal(t, "POST", leader.url()+"/graphs/g/jobs",
		map[string]any{"algorithm": "pagerank", "params": map[string]any{"max_iter": 10}})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d %v", code, sub)
	}
	id := sub["id"].(string)
	if !strings.HasSuffix(id, "@"+leader.addr) {
		t.Fatalf("job id %q lacks node suffix @%s", id, leader.addr)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		code, st := doJSON(t, "GET", follower.url()+"/jobs/"+id, nil)
		if code != 200 {
			t.Fatalf("cross-node poll: HTTP %d %v", code, st)
		}
		if st["state"] == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished: %v", id, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if code, res := doJSON(t, "GET", follower.url()+"/jobs/"+id+"/result", nil); code != 200 || res["ranks"] == nil {
		t.Fatalf("cross-node result: HTTP %d %v", code, res)
	}
}

// TestSingleNodeUnchangedByClusterCode is the regression the cluster
// feature must not break: with Role unset the daemon's wire surface is
// exactly the pre-cluster one — no replication routes, no cluster stats
// key, no routing headers required or consumed.
func TestSingleNodeUnchangedByClusterCode(t *testing.T) {
	ts, _ := newTestServer(t, 0)

	resp, err := http.Get(ts.URL + "/replication/graphs")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("/replication/graphs on single node: HTTP %d, want 404", resp.StatusCode)
	}
	loadSyntheticGraph(t, ts.URL, "g", "kron", 5)
	code, body := doJSON(t, "POST", ts.URL+"/graphs/g/edges", map[string]any{
		"ops": []map[string]any{{"op": "upsert", "src": 1, "dst": 2}},
	})
	if code != 200 {
		t.Fatalf("single-node write: HTTP %d %v", code, body)
	}
	code, stats := doJSON(t, "GET", ts.URL+"/stats", nil)
	if code != 200 {
		t.Fatalf("stats: HTTP %d", code)
	}
	if _, present := stats["cluster"]; present {
		t.Fatalf("single-node /stats grew a cluster section: %v", stats["cluster"])
	}
	// Job ids carry no node suffix.
	code, sub := doJSON(t, "POST", ts.URL+"/graphs/g/jobs", map[string]any{"algorithm": "pagerank"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	if id := sub["id"].(string); strings.Contains(id, "@") {
		t.Fatalf("single-node job id %q carries a cluster suffix", id)
	}
}

// TestClusterFollowerServesAtReplicatedVersionDuringLag pins the
// bounded-staleness contract: a follower answers reads at a version it
// has fully applied, never a torn intermediate.
func TestClusterFollowerVersionsAreExact(t *testing.T) {
	leader, follower := bootPair(t)
	loadSyntheticGraph(t, leader.url(), "g", "kron", 5)
	var finalV float64
	for i := 0; i < 20; i++ {
		finalV = mutateOn(t, leader.url(), "g", []map[string]any{
			{"op": "upsert", "src": i, "dst": i + 1, "weight": float64(i + 1)},
		})
	}
	// Every version the follower ever reports must be one the leader
	// actually published (1..finalV), monotonically nondecreasing.
	var last float64
	deadline := time.Now().Add(15 * time.Second)
	for {
		code, info := doLocal(t, "GET", follower.url()+"/graphs/g", nil)
		if code == 200 {
			v := info["version"].(float64)
			if v < last {
				t.Fatalf("follower version went backwards: %v after %v", v, last)
			}
			if v != float64(uint64(v)) || v > finalV {
				t.Fatalf("follower reported impossible version %v", v)
			}
			last = v
			if v == finalV {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower stalled at v%v of %v", last, finalV)
		}
		time.Sleep(testPoll / 4)
	}
}
