package server

import (
	"fmt"
	"net/http"
	"testing"
	"time"

	"lagraph/internal/algo"
)

// reportNonEmpty mirrors RunReport.NonEmpty on the decoded JSON shape.
func reportNonEmpty(rep map[string]any) bool {
	if n, _ := rep["iterations"].(float64); n > 0 {
		return true
	}
	if m, _ := rep["method"].(string); m != "" {
		return true
	}
	if c, _ := rep["counters"].(map[string]any); len(c) > 0 {
		return true
	}
	return false
}

// TestExplainAllCatalogedAlgorithms is the acceptance sweep: every
// algorithm the catalog registers must return a non-empty run report via
// ?explain=1 — proving the probe threads through every kernel — while
// the default (no explain) wire shape stays report-free.
func TestExplainAllCatalogedAlgorithms(t *testing.T) {
	ts, _ := newTestServer(t, 0)
	loadSyntheticGraph(t, ts.URL, "und", "kron", 7)

	for _, name := range algo.Default().Names() {
		t.Run(name, func(t *testing.T) {
			url := fmt.Sprintf("%s/graphs/und/algorithms/%s?explain=1", ts.URL, name)
			code, body := doJSON(t, "POST", url, nil)
			if code != 200 {
				t.Fatalf("explain %s: status %d, body %v", name, code, body)
			}
			rep, ok := body["report"].(map[string]any)
			if !ok {
				t.Fatalf("explain %s: no report in %v", name, body)
			}
			if rep["algorithm"] != name {
				t.Errorf("report.algorithm = %v, want %q", rep["algorithm"], name)
			}
			if !reportNonEmpty(rep) {
				t.Errorf("explain %s: empty report %v", name, rep)
			}
			if _, ok := rep["kernel_seconds"]; !ok {
				t.Errorf("explain %s: report missing kernel_seconds: %v", name, rep)
			}
		})
	}

	// Without explain the envelope must stay exactly as before: no report
	// key, even though the cached response carries one internally.
	code, body := doJSON(t, "POST", ts.URL+"/graphs/und/algorithms/cc", nil)
	if code != 200 {
		t.Fatalf("plain cc: %d %v", code, body)
	}
	if _, ok := body["report"]; ok {
		t.Fatalf("plain response leaked the report: %v", body)
	}
	// The same cached computation, re-requested with explain, still has it:
	// reports survive result-cache hits.
	code, body = doJSON(t, "POST", ts.URL+"/graphs/und/algorithms/cc?explain=1", nil)
	if code != 200 {
		t.Fatalf("explain cc after cache: %d %v", code, body)
	}
	if _, ok := body["report"].(map[string]any); !ok {
		t.Fatalf("cache-served explain lost the report: %v", body)
	}
}

// TestJobReportEndpoint covers GET /jobs/{id}/report: the async surface
// of the same run report.
func TestJobReportEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, 0)
	loadSyntheticGraph(t, ts.URL, "g", "kron", 7)

	code, job := doJSON(t, "POST", ts.URL+"/graphs/g/jobs", map[string]any{
		"algorithm": "pagerank", "params": map[string]any{"max_iter": 20},
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, job)
	}
	id := job["id"].(string)

	deadline := time.Now().Add(10 * time.Second)
	for {
		code, info := doJSON(t, "GET", ts.URL+"/jobs/"+id, nil)
		if code != 200 {
			t.Fatalf("poll: %d", code)
		}
		if info["state"] == "done" {
			break
		}
		if info["state"] == "failed" || info["state"] == "cancelled" {
			t.Fatalf("job ended %v: %v", info["state"], info["error"])
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(2 * time.Millisecond)
	}

	code, body := doJSON(t, "GET", ts.URL+"/jobs/"+id+"/report", nil)
	if code != 200 {
		t.Fatalf("report: %d %v", code, body)
	}
	rep, ok := body["report"].(map[string]any)
	if !ok {
		t.Fatalf("no report in %v", body)
	}
	if rep["algorithm"] != "pagerank" || !reportNonEmpty(rep) {
		t.Fatalf("bad report: %v", rep)
	}
	if body["graph"] != "g" || body["job"] != id {
		t.Fatalf("report envelope: %v", body)
	}
	// The plain result endpoint stays report-free.
	code, res := doJSON(t, "GET", ts.URL+"/jobs/"+id+"/result", nil)
	if code != 200 {
		t.Fatalf("result: %d", code)
	}
	if _, ok := res["report"]; ok {
		t.Fatalf("result leaked the report: %v", res)
	}

	if code, _ := doJSON(t, "GET", ts.URL+"/jobs/nope/report", nil); code != 404 {
		t.Fatalf("unknown job report: %d, want 404", code)
	}
}

// TestTraceRouteFilter covers GET /debug/traces?route= (and its
// composition with ?limit=).
func TestTraceRouteFilter(t *testing.T) {
	ts, _ := newTestServer(t, 0)
	for i := 0; i < 3; i++ {
		if code, _ := doJSON(t, "GET", ts.URL+"/healthz", nil); code != 200 {
			t.Fatal("healthz failed")
		}
		if code, _ := doJSON(t, "GET", ts.URL+"/stats", nil); code != 200 {
			t.Fatal("stats failed")
		}
	}

	code, body := doJSON(t, "GET", ts.URL+"/debug/traces?route=/healthz", nil)
	if code != 200 {
		t.Fatalf("traces: %d", code)
	}
	traces := body["traces"].([]any)
	if len(traces) != 3 {
		t.Fatalf("got %d /healthz traces, want 3: %v", len(traces), body)
	}
	for _, raw := range traces {
		tr := raw.(map[string]any)
		spans := tr["spans"].([]any)
		root := spans[0].(map[string]any)
		found := false
		for _, a := range root["attrs"].([]any) {
			attr := a.(map[string]any)
			if attr["key"] == "route" && attr["value"] == "/healthz" {
				found = true
			}
		}
		if !found {
			t.Fatalf("filtered trace is not /healthz: %v", tr)
		}
	}

	// limit applies after the filter: 2 of the 3 matches.
	code, body = doJSON(t, "GET", ts.URL+"/debug/traces?route=/healthz&limit=2", nil)
	if code != 200 || int(body["count"].(float64)) != 2 {
		t.Fatalf("route+limit: %d %v", code, body)
	}

	// A route nobody hit filters to zero, not an error.
	code, body = doJSON(t, "GET", ts.URL+"/debug/traces?route=/graphs", nil)
	if code != 200 || int(body["count"].(float64)) != 0 {
		t.Fatalf("unmatched route: %d %v", code, body)
	}
}
