package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"lagraph/internal/grb"
	"lagraph/internal/lagraph"
)

// postBody uploads raw bytes to POST /graphs with the given query string.
func postBody(t *testing.T, base, query string, body []byte) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(base+"/graphs?"+query, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /graphs?%s: %v", query, err)
	}
	defer resp.Body.Close()
	out := map[string]any{}
	decodeInto(t, resp, out)
	return resp.StatusCode, out
}

func decodeInto(t *testing.T, resp *http.Response, out map[string]any) {
	t.Helper()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if buf.Len() == 0 {
		return
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("decode response: %v (%s)", err, buf.String())
	}
}

// TestMMUploadRealRoundTrip writes a weighted directed matrix with
// MMWrite, uploads it through POST /graphs?format=mm, and verifies the
// resident graph matches the original entry for entry (via a PageRank
// comparison against a locally built graph).
func TestMMUploadRealRoundTrip(t *testing.T) {
	ts, reg := newTestServer(t, 0)

	rows := []int{0, 0, 1, 2, 3, 3}
	cols := []int{1, 2, 2, 0, 0, 1}
	vals := []float64{1.5, 2, 0.5, 3, 1, 4}
	A, err := grb.MatrixFromTuples(4, 4, rows, cols, vals, nil)
	if err != nil {
		t.Fatalf("MatrixFromTuples: %v", err)
	}
	var mm bytes.Buffer
	if err := lagraph.MMWrite(&mm, A); err != nil {
		t.Fatalf("MMWrite: %v", err)
	}

	code, body := postBody(t, ts.URL, "format=mm&name=real&kind=directed", mm.Bytes())
	if code != http.StatusCreated {
		t.Fatalf("upload: %d %v", code, body)
	}
	if body["nodes"].(float64) != 4 || body["edges"].(float64) != 6 {
		t.Fatalf("round trip changed shape: %v", body)
	}

	// The uploaded matrix must be value-identical to the original.
	lease, err := reg.Acquire("real")
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	defer lease.Release()
	eq, err := lagraph.IsAll(lease.Graph().A, A, func(a, b float64) bool { return a == b })
	if err != nil {
		t.Fatalf("IsAll: %v", err)
	}
	if !eq {
		t.Fatal("uploaded matrix differs from original")
	}

	// And it must answer algorithm calls.
	if code, body := doJSON(t, "POST", ts.URL+"/graphs/real/algorithms/pagerank", nil); code != 200 {
		t.Fatalf("pagerank on upload: %d %v", code, body)
	}
}

// TestMMUploadInteger exercises the integer field with symmetric storage:
// the parser must expand the symmetric entries, and the undirected load
// must pass the symmetry check.
func TestMMUploadInteger(t *testing.T) {
	ts, _ := newTestServer(t, 0)

	mm := strings.Join([]string{
		"%%MatrixMarket matrix coordinate integer symmetric",
		"% a 4-vertex path plus one chord",
		"4 4 4",
		"2 1 5",
		"3 2 7",
		"4 3 2",
		"3 1 9",
		"",
	}, "\n")
	code, body := postBody(t, ts.URL, "format=mm&name=int&kind=undirected", []byte(mm))
	if code != http.StatusCreated {
		t.Fatalf("upload: %d %v", code, body)
	}
	// 4 stored off-diagonal entries expand to 8 directed edges.
	if body["edges"].(float64) != 8 {
		t.Fatalf("edges = %v, want 8 (symmetric expansion)", body["edges"])
	}
	code, res := doJSON(t, "POST", ts.URL+"/graphs/int/algorithms/tc", nil)
	if code != 200 {
		t.Fatalf("tc: %d %v", code, res)
	}
	if res["triangles"].(float64) != 1 {
		t.Fatalf("triangles = %v, want 1 (the 1-2-3 chord)", res["triangles"])
	}
}

// TestMMUploadPattern exercises the pattern field: entries carry no
// values, and the resulting unit-weight graph runs CC.
func TestMMUploadPattern(t *testing.T) {
	ts, _ := newTestServer(t, 0)

	mm := strings.Join([]string{
		"%%MatrixMarket matrix coordinate pattern symmetric",
		"5 5 3",
		"2 1",
		"3 2",
		"5 4",
		"",
	}, "\n")
	code, body := postBody(t, ts.URL, "format=mm&name=pat&kind=undirected", []byte(mm))
	if code != http.StatusCreated {
		t.Fatalf("upload: %d %v", code, body)
	}
	code, res := doJSON(t, "POST", ts.URL+"/graphs/pat/algorithms/cc", nil)
	if code != 200 {
		t.Fatalf("cc: %d %v", code, res)
	}
	// {1,2,3} and {4,5}: two components.
	if res["components"].(float64) != 2 {
		t.Fatalf("components = %v, want 2", res["components"])
	}
}

// TestMMUploadRejectsAsymmetricUndirected: claiming kind=undirected for an
// asymmetric matrix must fail CheckGraph, not load a corrupt graph.
func TestMMUploadRejectsAsymmetricUndirected(t *testing.T) {
	ts, _ := newTestServer(t, 0)
	mm := strings.Join([]string{
		"%%MatrixMarket matrix coordinate real general",
		"3 3 2",
		"1 2 1.0",
		"2 3 1.0",
		"",
	}, "\n")
	code, body := postBody(t, ts.URL, "format=mm&name=bad&kind=undirected", []byte(mm))
	if code != http.StatusBadRequest {
		t.Fatalf("asymmetric undirected upload: %d %v, want 400", code, body)
	}
}

// TestBinUploadRoundTrip writes the fast binary container with BinWrite
// and uploads it through POST /graphs?format=bin.
func TestBinUploadRoundTrip(t *testing.T) {
	ts, reg := newTestServer(t, 0)

	// A 6-cycle with weights.
	n := 6
	var rows, cols []int
	var vals []float64
	for i := 0; i < n; i++ {
		rows = append(rows, i)
		cols = append(cols, (i+1)%n)
		vals = append(vals, float64(i+1))
	}
	A, err := grb.MatrixFromTuples(n, n, rows, cols, vals, nil)
	if err != nil {
		t.Fatalf("MatrixFromTuples: %v", err)
	}
	var bin bytes.Buffer
	if err := lagraph.BinWrite(&bin, A); err != nil {
		t.Fatalf("BinWrite: %v", err)
	}

	code, body := postBody(t, ts.URL, "format=bin&name=cycle", bin.Bytes())
	if code != http.StatusCreated {
		t.Fatalf("upload: %d %v", code, body)
	}
	if body["nodes"].(float64) != float64(n) || body["edges"].(float64) != float64(n) {
		t.Fatalf("round trip changed shape: %v", body)
	}
	lease, err := reg.Acquire("cycle")
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	defer lease.Release()
	eq, err := lagraph.IsAll(lease.Graph().A, A, func(a, b float64) bool { return a == b })
	if err != nil {
		t.Fatalf("IsAll: %v", err)
	}
	if !eq {
		t.Fatal("uploaded binary matrix differs from original")
	}

	// BFS from 0 on a directed cycle reaches everything.
	code, res := doJSON(t, "POST", ts.URL+"/graphs/cycle/algorithms/bfs", map[string]any{"source": 0})
	if code != 200 {
		t.Fatalf("bfs: %d %v", code, res)
	}
	if res["reached"].(float64) != float64(n) {
		t.Fatalf("reached = %v, want %d", res["reached"], n)
	}

	// A corrupted container is rejected cleanly.
	garbage := append([]byte("XXXXXXXX"), bin.Bytes()[8:]...)
	if code, _ := postBody(t, ts.URL, "format=bin&name=junk", garbage); code != http.StatusBadRequest {
		t.Fatalf("corrupt upload: %d, want 400", code)
	}
}
