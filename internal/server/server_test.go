package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"lagraph/internal/registry"
)

// newTestServer spins up the full handler stack over httptest.
func newTestServer(t *testing.T, maxBytes int64) (*httptest.Server, *registry.Registry) {
	t.Helper()
	reg := registry.New(maxBytes)
	srv := New(reg, Options{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	return ts, reg
}

// doJSON posts a JSON body and decodes the JSON response.
func doJSON(t *testing.T, method, url string, body any) (int, map[string]any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	out := map[string]any{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && err != io.EOF {
		t.Fatalf("%s %s: decode: %v", method, url, err)
	}
	return resp.StatusCode, out
}

// loadSynthetic loads one generated graph and fails the test on error.
func loadSyntheticGraph(t *testing.T, base, name, class string, scale int) {
	t.Helper()
	code, body := doJSON(t, "POST", base+"/graphs", map[string]any{
		"name": name, "class": class, "scale": scale, "edge_factor": 4, "seed": 42,
	})
	if code != http.StatusCreated {
		t.Fatalf("load %s: status %d, body %v", name, code, body)
	}
}

func TestGraphLifecycle(t *testing.T) {
	ts, _ := newTestServer(t, 0)

	if code, body := doJSON(t, "GET", ts.URL+"/healthz", nil); code != 200 || body["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, body)
	}

	loadSyntheticGraph(t, ts.URL, "k", "kron", 6)

	code, body := doJSON(t, "GET", ts.URL+"/graphs", nil)
	if code != 200 {
		t.Fatalf("list: %d", code)
	}
	graphs := body["graphs"].([]any)
	if len(graphs) != 1 {
		t.Fatalf("list: %d graphs, want 1", len(graphs))
	}
	g0 := graphs[0].(map[string]any)
	if g0["name"] != "k" || g0["kind"] != "undirected" || g0["nodes"].(float64) != 64 {
		t.Fatalf("list entry: %v", g0)
	}

	if code, _ := doJSON(t, "GET", ts.URL+"/graphs/k", nil); code != 200 {
		t.Fatalf("get: %d", code)
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/graphs/zzz", nil); code != 404 {
		t.Fatalf("get missing: %d, want 404", code)
	}

	// Duplicate names conflict.
	code, _ = doJSON(t, "POST", ts.URL+"/graphs", map[string]any{
		"name": "k", "class": "kron", "scale": 5,
	})
	if code != http.StatusConflict {
		t.Fatalf("duplicate load: %d, want 409", code)
	}

	if code, _ := doJSON(t, "DELETE", ts.URL+"/graphs/k", nil); code != 200 {
		t.Fatalf("delete: %d", code)
	}
	if code, _ := doJSON(t, "DELETE", ts.URL+"/graphs/k", nil); code != 404 {
		t.Fatalf("double delete: %d, want 404", code)
	}
}

func TestAllAlgorithmEndpoints(t *testing.T) {
	ts, _ := newTestServer(t, 0)
	loadSyntheticGraph(t, ts.URL, "und", "kron", 7)    // undirected
	loadSyntheticGraph(t, ts.URL, "dir", "twitter", 7) // directed

	for _, tc := range []struct {
		graph, alg string
		params     map[string]any
		wantField  string
	}{
		{"und", "bfs", map[string]any{"source": 1, "level": true}, "parent"},
		{"und", "pagerank", map[string]any{"max_iter": 20}, "ranks"},
		{"und", "cc", nil, "components"},
		{"und", "sssp", map[string]any{"source": 1, "delta": 2}, "distances"},
		{"und", "tc", nil, "triangles"},
		{"und", "bc", map[string]any{"sources": []int{0, 1, 2, 3}}, "centrality"},
		{"dir", "bfs", map[string]any{"source": 0}, "parent"},
		{"dir", "pagerank", map[string]any{"variant": "gx"}, "ranks"},
		{"dir", "cc", nil, "components"},
		{"dir", "bc", map[string]any{"sources": []int{0, 1}}, "centrality"},
	} {
		url := fmt.Sprintf("%s/graphs/%s/algorithms/%s", ts.URL, tc.graph, tc.alg)
		code, body := doJSON(t, "POST", url, tc.params)
		if code != 200 {
			t.Errorf("%s on %s: status %d, body %v", tc.alg, tc.graph, code, body)
			continue
		}
		if _, ok := body[tc.wantField]; !ok {
			t.Errorf("%s on %s: missing %q in %v", tc.alg, tc.graph, tc.wantField, body)
		}
	}
}

func TestAlgorithmErrors(t *testing.T) {
	ts, _ := newTestServer(t, 0)
	loadSyntheticGraph(t, ts.URL, "dir", "twitter", 6)

	if code, _ := doJSON(t, "POST", ts.URL+"/graphs/dir/algorithms/nope", nil); code != 404 {
		t.Fatalf("unknown algorithm: %d, want 404", code)
	}
	if code, _ := doJSON(t, "POST", ts.URL+"/graphs/zzz/algorithms/bfs", nil); code != 404 {
		t.Fatalf("unknown graph: %d, want 404", code)
	}
	// TC needs an undirected graph.
	if code, _ := doJSON(t, "POST", ts.URL+"/graphs/dir/algorithms/tc", nil); code != 400 {
		t.Fatalf("tc on directed: %d, want 400", code)
	}
	// Out-of-range source.
	if code, _ := doJSON(t, "POST", ts.URL+"/graphs/dir/algorithms/bfs",
		map[string]any{"source": 1 << 30}); code != 400 {
		t.Fatalf("bad source: %d, want 400", code)
	}
	// Unknown spec fields are rejected.
	if code, _ := doJSON(t, "POST", ts.URL+"/graphs/dir/algorithms/bfs",
		map[string]any{"sauce": 3}); code != 400 {
		t.Fatalf("unknown param: %d, want 400", code)
	}
	// Missing Content-Type on POST /graphs.
	resp, err := http.Post(ts.URL+"/graphs", "application/x-octet-stream", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("bodyless load: %d, want 415", resp.StatusCode)
	}
}

// TestConcurrentAlgorithmCalls is the acceptance scenario: one resident
// graph serving many parallel algorithm requests (run under -race in CI).
func TestConcurrentAlgorithmCalls(t *testing.T) {
	ts, _ := newTestServer(t, 0)
	loadSyntheticGraph(t, ts.URL, "g", "kron", 8)

	algs := []struct {
		alg    string
		params map[string]any
	}{
		{"bfs", map[string]any{"source": 1}},
		{"pagerank", map[string]any{"max_iter": 20}},
		{"cc", nil},
		{"sssp", map[string]any{"source": 2, "delta": 2}},
		{"tc", nil},
		{"bc", map[string]any{"sources": []int{0, 1, 2, 3}}},
	}
	const rounds = 3 // 18 parallel requests across all six algorithms
	var wg sync.WaitGroup
	errs := make(chan error, rounds*len(algs))
	for round := 0; round < rounds; round++ {
		for _, a := range algs {
			wg.Add(1)
			go func(alg string, params map[string]any) {
				defer wg.Done()
				var rd io.Reader
				if params != nil {
					b, _ := json.Marshal(params)
					rd = bytes.NewReader(b)
				}
				resp, err := http.Post(ts.URL+"/graphs/g/algorithms/"+alg, "application/json", rd)
				if err != nil {
					errs <- err
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errs <- fmt.Errorf("%s: status %d: %s", alg, resp.StatusCode, body)
				}
			}(a.alg, a.params)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent call failed: %v", err)
	}

	// All requests served, none rejected, zero algorithm errors.
	code, stats := doJSON(t, "GET", ts.URL+"/stats", nil)
	if code != 200 {
		t.Fatalf("stats: %d", code)
	}
	if n := stats["algorithm_errors"].(float64); n != 0 {
		t.Fatalf("algorithm errors: %v", n)
	}
}

// TestCachedPropertyReuse verifies the cached-property contract through
// /stats: repeated PageRank calls on one graph must share a single
// transpose + degree materialization, with later calls counted as hits.
func TestCachedPropertyReuse(t *testing.T) {
	ts, _ := newTestServer(t, 0)
	loadSyntheticGraph(t, ts.URL, "g", "twitter", 7)

	// Distinct parameters per call: each one is a fresh computation (the
	// jobs engine would dedup identical bodies into one run), so the
	// assertions below isolate property-cache reuse from result caching.
	const calls = 5
	for i := 0; i < calls; i++ {
		code, body := doJSON(t, "POST", ts.URL+"/graphs/g/algorithms/pagerank",
			map[string]any{"max_iter": 10 + i})
		if code != 200 {
			t.Fatalf("pagerank call %d: %d %v", i, code, body)
		}
	}

	_, stats := doJSON(t, "GET", ts.URL+"/stats", nil)
	reg := stats["registry"].(map[string]any)
	graphs := reg["graphs"].([]any)
	if len(graphs) != 1 {
		t.Fatalf("graphs in stats: %d", len(graphs))
	}
	gi := graphs[0].(map[string]any)

	// PageRank needs AT + RowDegree: exactly two computations ever, no
	// matter how many calls, and every later demand is a cache hit.
	if got := gi["property_computes"].(float64); got != 2 {
		t.Fatalf("property_computes = %v, want 2 (transpose + degrees computed once)", got)
	}
	if got := gi["property_requests"].(float64); got != 2*calls {
		t.Fatalf("property_requests = %v, want %d", got, 2*calls)
	}
	if got := gi["property_hits"].(float64); got != 2*calls-2 {
		t.Fatalf("property_hits = %v, want %d", got, 2*calls-2)
	}
	if got := gi["algorithm_runs"].(float64); got != calls {
		t.Fatalf("algorithm_runs = %v, want %d", got, calls)
	}
	cached := gi["cached_properties"].([]any)
	found := map[string]bool{}
	for _, c := range cached {
		found[c.(string)] = true
	}
	if !found["AT"] || !found["RowDegree"] {
		t.Fatalf("cached_properties = %v, want AT and RowDegree", cached)
	}
}

// TestEvictionOverHTTP drives the LRU through the API: a small budget
// evicts the least-recently-used graph when a new one is loaded.
func TestEvictionOverHTTP(t *testing.T) {
	// Learn one graph's size from a probe registry, then budget for two.
	probe := registry.New(0)
	srvProbe := httptest.NewServer(New(probe, Options{}).Handler())
	loadSyntheticGraph(t, srvProbe.URL, "p", "twitter", 6)
	per := probe.List()[0].Bytes
	srvProbe.Close()

	ts2, _ := newTestServer(t, 2*per+per/2)
	loadSyntheticGraph(t, ts2.URL, "a", "twitter", 6)
	loadSyntheticGraph(t, ts2.URL, "b", "twitter", 6)
	// Touch a so b is LRU.
	if code, _ := doJSON(t, "POST", ts2.URL+"/graphs/a/algorithms/cc", nil); code != 200 {
		t.Fatalf("cc on a failed")
	}
	loadSyntheticGraph(t, ts2.URL, "c", "twitter", 6)

	if code, _ := doJSON(t, "GET", ts2.URL+"/graphs/b", nil); code != 404 {
		t.Fatalf("b should have been evicted, got %d", code)
	}
	if code, _ := doJSON(t, "GET", ts2.URL+"/graphs/a", nil); code != 200 {
		t.Fatalf("a should be resident, got %d", code)
	}
}
