package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lagraph/internal/registry"
)

// neverConverges are PageRank parameters that force the full (effectively
// unbounded) iteration budget: a negative tolerance can never be reached,
// so the job runs until cancelled.
var neverConverges = map[string]any{"tol": -1.0, "max_iter": 1 << 30}

// pollJob polls GET /jobs/{id} until the state predicate holds or the
// deadline passes, returning the last-seen job record.
func pollJob(t *testing.T, base, id string, want func(state string) bool) map[string]any {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var last map[string]any
	for time.Now().Before(deadline) {
		code, body := doJSON(t, "GET", base+"/jobs/"+id, nil)
		if code != 200 {
			t.Fatalf("poll job %s: status %d (%v)", id, code, body)
		}
		last = body
		if want(body["state"].(string)) {
			return body
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached wanted state; last %v", id, last)
	return nil
}

func jobsStats(t *testing.T, base string) map[string]any {
	t.Helper()
	code, stats := doJSON(t, "GET", base+"/stats", nil)
	if code != 200 {
		t.Fatalf("stats: %d", code)
	}
	return stats["jobs"].(map[string]any)
}

func TestAsyncJobLifecycle(t *testing.T) {
	ts, _ := newTestServer(t, 0)
	loadSyntheticGraph(t, ts.URL, "g", "kron", 7)

	// Submit.
	code, job := doJSON(t, "POST", ts.URL+"/graphs/g/jobs", map[string]any{
		"algorithm": "bfs", "params": map[string]any{"source": 1, "level": true},
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, job)
	}
	id := job["id"].(string)
	if job["graph"] != "g" || job["algorithm"] != "bfs" || job["graph_version"].(float64) != 1 {
		t.Fatalf("job record: %v", job)
	}

	// Poll to completion and fetch the result.
	pollJob(t, ts.URL, id, func(s string) bool { return s == "done" })
	code, result := doJSON(t, "GET", ts.URL+"/jobs/"+id+"/result", nil)
	if code != 200 {
		t.Fatalf("result: %d %v", code, result)
	}
	if _, ok := result["parent"]; !ok {
		t.Fatalf("result missing parent: %v", result)
	}

	// The job shows up in the listing.
	code, listing := doJSON(t, "GET", ts.URL+"/jobs", nil)
	if code != 200 || len(listing["jobs"].([]any)) == 0 {
		t.Fatalf("list: %d %v", code, listing)
	}

	// An identical resubmission is served from the result cache: a new
	// done record, no new computation.
	code, hit := doJSON(t, "POST", ts.URL+"/graphs/g/jobs", map[string]any{
		"algorithm": "bfs", "params": map[string]any{"source": 1, "level": true},
	})
	if code != http.StatusAccepted || hit["state"] != "done" || hit["cache_hit"] != true {
		t.Fatalf("cache-hit submit: %d %v", code, hit)
	}
	if s := jobsStats(t, ts.URL); s["cache_hits"].(float64) != 1 || s["completed"].(float64) != 1 {
		t.Fatalf("stats: %v", s)
	}

	// Errors: unknown job, unknown algorithm, unknown graph.
	if code, _ := doJSON(t, "GET", ts.URL+"/jobs/j-999999", nil); code != 404 {
		t.Fatalf("unknown job: %d", code)
	}
	if code, _ := doJSON(t, "DELETE", ts.URL+"/jobs/j-999999", nil); code != 404 {
		t.Fatalf("cancel unknown job: %d", code)
	}
	if code, _ := doJSON(t, "POST", ts.URL+"/graphs/g/jobs", map[string]any{"algorithm": "nope"}); code != 404 {
		t.Fatalf("unknown algorithm: %d", code)
	}
	if code, _ := doJSON(t, "POST", ts.URL+"/graphs/zzz/jobs", map[string]any{"algorithm": "bfs"}); code != 404 {
		t.Fatalf("unknown graph: %d", code)
	}
	if code, _ := doJSON(t, "POST", ts.URL+"/graphs/g/jobs", map[string]any{}); code != 400 {
		t.Fatalf("missing algorithm: %d", code)
	}
}

// TestCancelRunningJobReleasesLease is the acceptance scenario (run under
// -race in CI): a slow job on a generated graph is cancelled mid-run; the
// worker must observe context.Canceled promptly — the algorithm loop polls
// its context — and the graph lease must be released.
func TestCancelRunningJobReleasesLease(t *testing.T) {
	ts, reg := newTestServer(t, 0)
	loadSyntheticGraph(t, ts.URL, "g", "kron", 12) // ~4k vertices, ~64k edges

	code, job := doJSON(t, "POST", ts.URL+"/graphs/g/jobs", map[string]any{
		"algorithm": "pagerank", "params": neverConverges,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, job)
	}
	id := job["id"].(string)
	pollJob(t, ts.URL, id, func(s string) bool { return s == "running" })

	// The running job pins the graph.
	if info, ok := reg.Info("g"); !ok || info.Refs != 1 {
		t.Fatalf("refs while running = %+v", info)
	}

	cancelled := time.Now()
	if code, _ := doJSON(t, "DELETE", ts.URL+"/jobs/"+id, nil); code != 200 {
		t.Fatalf("cancel: %d", code)
	}
	final := pollJob(t, ts.URL, id, func(s string) bool { return s == "cancelled" })
	if took := time.Since(cancelled); took > 5*time.Second {
		t.Fatalf("cancellation took %s; iteration loop is not observing its context", took)
	}
	if msg, _ := final["error"].(string); !strings.Contains(msg, "context canceled") {
		t.Fatalf("job error = %q, want context canceled", msg)
	}

	// Lease released: the graph is evictable again.
	deadline := time.Now().Add(5 * time.Second)
	for {
		info, ok := reg.Info("g")
		if ok && info.Refs == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lease not released after cancellation: %+v", info)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The cancelled job's result is gone, and the counter recorded it.
	if code, _ := doJSON(t, "GET", ts.URL+"/jobs/"+id+"/result", nil); code != http.StatusGone {
		t.Fatalf("result of cancelled job: %d, want 410", code)
	}
	if s := jobsStats(t, ts.URL); s["cancelled"].(float64) != 1 {
		t.Fatalf("cancelled counter: %v", s)
	}
}

// TestSyncDisconnectCancelsComputation: a synchronous algorithm request
// whose client disconnects must cancel the underlying job (it has no
// other audience) and release the lease — r.Context() reaching the
// algorithm loop.
func TestSyncDisconnectCancelsComputation(t *testing.T) {
	ts, reg := newTestServer(t, 0)
	loadSyntheticGraph(t, ts.URL, "g", "kron", 10)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		b, _ := json.Marshal(neverConverges)
		req, err := http.NewRequestWithContext(ctx, "POST",
			ts.URL+"/graphs/g/algorithms/pagerank", bytes.NewReader(b))
		if err != nil {
			errc <- err
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		errc <- err
	}()

	// Wait until the sync request's job is running, then disconnect.
	deadline := time.Now().Add(10 * time.Second)
	var id string
	for id == "" {
		if time.Now().After(deadline) {
			t.Fatal("sync job never started")
		}
		_, listing := doJSON(t, "GET", ts.URL+"/jobs", nil)
		for _, x := range listing["jobs"].([]any) {
			j := x.(map[string]any)
			if j["state"] == "running" {
				id = j["id"].(string)
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("client request should have errored on disconnect")
	}
	pollJob(t, ts.URL, id, func(s string) bool { return s == "cancelled" })
	for deadline := time.Now().Add(5 * time.Second); ; {
		if info, ok := reg.Info("g"); ok && info.Refs == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("lease not released after disconnect-cancellation")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestDedupAndResultCache is the second acceptance scenario: identical
// concurrent submissions against one graph version produce exactly one
// computation, and a later identical request is a cache hit.
func TestDedupAndResultCache(t *testing.T) {
	ts, reg := newTestServer(t, 0)
	loadSyntheticGraph(t, ts.URL, "g", "kron", 9)

	// tol < 0 forces the full 400 sweeps, so the burst reliably overlaps.
	params := map[string]any{"tol": -1.0, "max_iter": 400}
	const burst = 4
	var wg sync.WaitGroup
	codes := make([]int, burst)
	bodies := make([]map[string]any, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, _ := json.Marshal(params)
			resp, err := http.Post(ts.URL+"/graphs/g/algorithms/pagerank", "application/json", bytes.NewReader(b))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			json.NewDecoder(resp.Body).Decode(&bodies[i])
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != 200 {
			t.Fatalf("burst request %d: status %d", i, code)
		}
		if _, ok := bodies[i]["ranks"]; !ok {
			t.Fatalf("burst request %d: missing ranks: %v", i, bodies[i])
		}
	}

	s := jobsStats(t, ts.URL)
	computed := s["completed"].(float64)
	shared := s["dedup_hits"].(float64) + s["cache_hits"].(float64)
	if computed != 1 {
		t.Fatalf("completed = %v, want exactly 1 computation for %d identical requests", computed, burst)
	}
	if shared != burst-1 {
		t.Fatalf("dedup+cache hits = %v, want %d", shared, burst-1)
	}
	if info, _ := reg.Info("g"); info.AlgRuns != 1 {
		t.Fatalf("registry algorithm_runs = %d, want 1", info.AlgRuns)
	}

	// After completion: one more identical request is a pure cache hit.
	code, body := doJSON(t, "POST", ts.URL+"/graphs/g/algorithms/pagerank", params)
	if code != 200 {
		t.Fatalf("cached call: %d %v", code, body)
	}
	s = jobsStats(t, ts.URL)
	if s["completed"].(float64) != 1 {
		t.Fatalf("cached call recomputed: %v", s)
	}
	if s["cache_hits"].(float64) < 1 {
		t.Fatalf("cache_hits = %v, want >= 1", s["cache_hits"])
	}

	// Reloading the graph bumps its version: the cache must miss.
	if code, _ := doJSON(t, "DELETE", ts.URL+"/graphs/g", nil); code != 200 {
		t.Fatal("delete failed")
	}
	loadSyntheticGraph(t, ts.URL, "g", "kron", 9)
	code, _ = doJSON(t, "POST", ts.URL+"/graphs/g/algorithms/pagerank", params)
	if code != 200 {
		t.Fatalf("post-reload call: %d", code)
	}
	if s := jobsStats(t, ts.URL); s["completed"].(float64) != 2 {
		t.Fatalf("post-reload completed = %v, want 2 (new version recomputes)", s["completed"])
	}
}

// TestJobDeadline: a client-set timeout fails the job with a deadline
// error surfaced as 504 on the result endpoint.
func TestJobDeadline(t *testing.T) {
	ts, _ := newTestServer(t, 0)
	loadSyntheticGraph(t, ts.URL, "g", "kron", 9)

	code, job := doJSON(t, "POST", ts.URL+"/graphs/g/jobs", map[string]any{
		"algorithm": "pagerank", "params": neverConverges, "timeout_seconds": 0.05,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, job)
	}
	id := job["id"].(string)
	final := pollJob(t, ts.URL, id, func(s string) bool { return s == "failed" })
	if msg, _ := final["error"].(string); !strings.Contains(msg, "deadline") {
		t.Fatalf("error = %q, want deadline", msg)
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/jobs/"+id+"/result", nil); code != http.StatusGatewayTimeout {
		t.Fatalf("result: %d, want 504", code)
	}
}

// TestJobsStatsExposed: /stats carries the engine counters and the
// per-graph registry version.
func TestJobsStatsExposed(t *testing.T) {
	ts, _ := newTestServer(t, 0)
	loadSyntheticGraph(t, ts.URL, "g", "kron", 7)
	if code, _ := doJSON(t, "POST", ts.URL+"/graphs/g/algorithms/cc", nil); code != 200 {
		t.Fatalf("cc failed")
	}

	code, stats := doJSON(t, "GET", ts.URL+"/stats", nil)
	if code != 200 {
		t.Fatalf("stats: %d", code)
	}
	js, ok := stats["jobs"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing jobs block: %v", stats)
	}
	for _, field := range []string{"workers", "queue_depth", "queued", "running",
		"submitted", "completed", "failed", "cancelled", "dedup_hits", "cache_hits", "cached_results"} {
		if _, ok := js[field]; !ok {
			t.Errorf("jobs stats missing %q: %v", field, js)
		}
	}
	if js["submitted"].(float64) != 1 || js["completed"].(float64) != 1 {
		t.Fatalf("jobs counters: %v", js)
	}
	gi := stats["registry"].(map[string]any)["graphs"].([]any)[0].(map[string]any)
	if gi["version"].(float64) != 1 {
		t.Fatalf("graph version in stats: %v", gi)
	}
}

// TestFailedSubmissionReleasesLease: submissions the engine rejects
// (queue full) must hand the lease back.
func TestFailedSubmissionReleasesLease(t *testing.T) {
	reg := registry.New(0)
	srv := New(reg, Options{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	loadSyntheticGraph(t, ts.URL, "g", "kron", 9)

	// Fill the worker and the queue with slow jobs.
	submit := func(maxIter int) (int, map[string]any) {
		return doJSON(t, "POST", ts.URL+"/graphs/g/jobs", map[string]any{
			"algorithm": "pagerank",
			"params":    map[string]any{"tol": -1.0, "max_iter": maxIter},
		})
	}
	if code, _ := submit(1 << 29); code != http.StatusAccepted {
		t.Fatalf("first submit: %d", code)
	}
	// Wait until it occupies the worker so the queue slot frees.
	deadline := time.Now().Add(5 * time.Second)
	for jobsStats(t, ts.URL)["running"].(float64) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first job never ran")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if code, _ := submit(1 << 28); code != http.StatusAccepted {
		t.Fatalf("second submit: %d", code)
	}
	code, body := submit(1 << 27)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %d %v", code, body)
	}
	// The rejected submission's lease is back: exactly two outstanding.
	if info, _ := reg.Info("g"); info.Refs != 2 {
		t.Fatalf("refs = %d, want 2 (rejected submission released its lease)", info.Refs)
	}
}
