package server

import (
	"net/http/httptest"
	"testing"

	"lagraph/internal/registry"
	"lagraph/internal/store"
)

// Durable-service tests: the full HTTP stack over a data directory,
// restarted between requests the way a crashed daemon would be.

// newDurableServer boots the handler stack against dir, recovering
// whatever it holds. The caller restarts by calling it again on the same
// dir after closing the previous incarnation.
func newDurableServer(t *testing.T, dir string) (*httptest.Server, *Server) {
	t.Helper()
	st, err := store.Open(store.Options{Dir: dir, Fsync: true})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	reg := registry.New(0)
	srv := New(reg, Options{Store: st})
	ts := httptest.NewServer(srv.Handler())
	return ts, srv
}

func TestDurableServerSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	ts, srv := newDurableServer(t, dir)

	// Load one graph, mutate it twice.
	loadSyntheticGraph(t, ts.URL, "persisted", "kron", 5)
	for round := 0; round < 2; round++ {
		code, body := doJSON(t, "POST", ts.URL+"/graphs/persisted/edges", map[string]any{
			"ops": []map[string]any{
				{"op": "upsert", "src": round, "dst": 20 + round, "weight": 2.5},
				{"op": "delete", "src": 0, "dst": 1},
			},
		})
		if code != 200 {
			t.Fatalf("mutate round %d: HTTP %d: %v", round, code, body)
		}
	}
	code, info := doJSON(t, "GET", ts.URL+"/graphs/persisted", nil)
	if code != 200 {
		t.Fatalf("info: HTTP %d", code)
	}
	wantVersion := info["version"].(float64)
	wantEdges := info["edges"].(float64)
	if wantVersion != 3 {
		t.Fatalf("pre-restart version = %v, want 3", wantVersion)
	}

	// "Crash" the daemon and boot a fresh one on the same directory.
	ts.Close()
	srv.Close()
	ts2, srv2 := newDurableServer(t, dir)
	defer ts2.Close()
	defer srv2.Close()

	code, info = doJSON(t, "GET", ts2.URL+"/graphs/persisted", nil)
	if code != 200 {
		t.Fatalf("post-restart info: HTTP %d: %v", code, info)
	}
	if info["version"].(float64) != wantVersion || info["edges"].(float64) != wantEdges {
		t.Fatalf("post-restart graph = v%v/%v edges, want v%v/%v",
			info["version"], info["edges"], wantVersion, wantEdges)
	}

	// The recovered graph serves algorithms and further mutations.
	if code, body := doJSON(t, "POST", ts2.URL+"/graphs/persisted/algorithms/pagerank",
		map[string]any{"max_iter": 10}); code != 200 {
		t.Fatalf("post-restart pagerank: HTTP %d: %v", code, body)
	}
	code, res := doJSON(t, "POST", ts2.URL+"/graphs/persisted/edges", map[string]any{
		"ops": []map[string]any{{"op": "upsert", "src": 5, "dst": 6}},
	})
	if code != 200 || res["version"].(float64) != wantVersion+1 {
		t.Fatalf("post-restart mutation: HTTP %d, version %v (want %v)",
			code, res["version"], wantVersion+1)
	}

	// /stats exposes the store section with the recovery report.
	code, stats := doJSON(t, "GET", ts2.URL+"/stats", nil)
	if code != 200 {
		t.Fatalf("stats: HTTP %d", code)
	}
	storeSec, ok := stats["store"].(map[string]any)
	if !ok {
		t.Fatalf("stats has no store section: %v", stats["store"])
	}
	rec, ok := storeSec["recovery"].(map[string]any)
	if !ok || rec["graphs_recovered"].(float64) != 1 || rec["batches_replayed"].(float64) != 2 {
		t.Fatalf("recovery report = %v, want 1 graph / 2 batches", storeSec["recovery"])
	}
}

func TestDurableServerDeleteIsDurable(t *testing.T) {
	dir := t.TempDir()
	ts, srv := newDurableServer(t, dir)
	loadSyntheticGraph(t, ts.URL, "doomed", "urand", 4)
	loadSyntheticGraph(t, ts.URL, "kept", "urand", 4)
	if code, body := doJSON(t, "DELETE", ts.URL+"/graphs/doomed", nil); code != 200 {
		t.Fatalf("delete: HTTP %d: %v", code, body)
	}
	ts.Close()
	srv.Close()

	ts2, srv2 := newDurableServer(t, dir)
	defer ts2.Close()
	defer srv2.Close()
	if code, _ := doJSON(t, "GET", ts2.URL+"/graphs/doomed", nil); code != 404 {
		t.Fatalf("deleted graph resurrected: HTTP %d", code)
	}
	if code, _ := doJSON(t, "GET", ts2.URL+"/graphs/kept", nil); code != 200 {
		t.Fatalf("kept graph lost: HTTP %d", code)
	}
}

func TestDurableServerUploadPathsPersist(t *testing.T) {
	dir := t.TempDir()
	ts, srv := newDurableServer(t, dir)

	// Matrix Market upload (the non-synthetic load path).
	mm := "%%MatrixMarket matrix coordinate real general\n3 3 3\n1 2 1.5\n2 3 2.5\n3 1 3.5\n"
	code, body := postBody(t, ts.URL, "format=mm&name=mmup&kind=directed", []byte(mm))
	if code != 201 {
		t.Fatalf("mm upload: HTTP %d: %v", code, body)
	}
	ts.Close()
	srv.Close()

	ts2, srv2 := newDurableServer(t, dir)
	defer ts2.Close()
	defer srv2.Close()
	code, info := doJSON(t, "GET", ts2.URL+"/graphs/mmup", nil)
	if code != 200 || info["edges"].(float64) != 3 {
		t.Fatalf("recovered upload: HTTP %d, %v", code, info)
	}
}
