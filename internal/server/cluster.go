package server

import (
	"net/http"
	"net/http/httputil"
	"net/url"
	"strconv"
	"strings"

	"lagraph/internal/cluster"
	"lagraph/internal/obs"
)

// Cluster mode. With Options.Cluster.Role set, the node joins a static
// leader/follower cluster:
//
//   - The leader additionally serves the replication surface —
//     GET /replication/graphs, .../checkpoint, .../wal — straight off the
//     durable store's files (checkpoint bytes verbatim, WAL records
//     CRC-verified on every read).
//   - A follower runs a cluster.Replicator that keeps the local registry
//     a version-exact copy of the leader's graphs, and answers every
//     write (graph create/delete, edge mutations) with 421 Misdirected
//     Request naming the leader.
//   - Both roles route graph-scoped reads by consistent hash: a request
//     for a graph owned by another peer is forwarded there once (the
//     X-Lagraph-Routed header is the loop guard), so read traffic fans
//     out across the membership without a balancer that understands
//     graph names. Job polls route by the "@node" suffix minted into
//     cluster job ids.
//
// With Role unset every wrapper below degrades to the identity and no
// cluster route is registered: the single-node wire behavior is exactly
// the pre-cluster one.

// clusterState is the node's cluster runtime.
type clusterState struct {
	cfg  cluster.Config
	ring *cluster.Ring
	repl *cluster.Replicator // followers only

	proxies map[string]*httputil.ReverseProxy // keyed by peer address

	proxied     *obs.Counter // reads forwarded to their owning peer
	misdirected *obs.Counter // writes refused with 421
	ships       *obs.Counter // leader: checkpoints shipped
	tailReqs    *obs.Counter // leader: tail polls answered
	tailBatches *obs.Counter // leader: WAL batches served
}

// initCluster wires the cluster runtime. Called from New after the
// store/stream/jobs wiring (a follower's replicator applies batches
// through them) and before route registration.
func (s *Server) initCluster() {
	cfg := s.opts.Cluster
	c := &clusterState{
		cfg:     cfg,
		ring:    cluster.NewRing(cfg.Peers),
		proxies: make(map[string]*httputil.ReverseProxy, len(cfg.Peers)),
	}
	for _, p := range cfg.Peers {
		if p == cfg.Self {
			continue
		}
		target, err := url.Parse(cluster.BaseURL(p))
		if err != nil {
			continue
		}
		rp := httputil.NewSingleHostReverseProxy(target)
		inner := rp.Director
		rp.Director = func(req *http.Request) {
			inner(req)
			req.Header.Set(cluster.HeaderRouted, cfg.Self)
		}
		c.proxies[p] = rp
	}

	o := s.obs
	role := string(cfg.Role)
	o.GaugeVec("replication_role", "This node's cluster role (constant 1).", "role").With(role).Set(1)
	o.Gauge("replication_peers", "Static cluster membership size.").Set(float64(len(cfg.Peers)))
	c.proxied = o.Counter("cluster_requests_proxied_total", "Graph reads forwarded to their ring-owning peer.")
	c.misdirected = o.Counter("cluster_writes_misdirected_total", "Writes refused with 421 on a read replica.")
	if cfg.Role == cluster.RoleLeader {
		c.ships = o.Counter("replication_checkpoint_ships_total", "Checkpoint snapshots shipped to followers.")
		c.tailReqs = o.Counter("replication_tail_requests_total", "WAL tail polls answered.")
		c.tailBatches = o.Counter("replication_wal_batches_served_total", "WAL batches served to followers.")
	}
	if cfg.Role == cluster.RoleFollower {
		c.repl = cluster.NewReplicator(cluster.ReplicatorOptions{
			Config:   cfg,
			Registry: s.reg,
			Stream:   s.stream,
			Store:    s.store,
			Obs:      o,
			Logger:   s.opts.Logger,
			OnRemove: func(name string) { s.jobs.InvalidateGraph(name) },
		})
	}
	s.cluster = c
}

// registerClusterRoutes adds the leader's replication surface. Like
// /metrics and /debug/*, it lives on the operator plane: outside the
// instrumented middleware and the tenant facade (followers authenticate
// by network reachability, exactly like a Prometheus scraper; the data
// it serves is the same bytes the data directory holds).
func (s *Server) registerClusterRoutes() {
	if s.cluster == nil || s.cluster.cfg.Role != cluster.RoleLeader {
		return
	}
	s.mux.HandleFunc("GET /replication/graphs", s.handleReplicationList)
	s.mux.HandleFunc("GET /replication/graphs/{name}/checkpoint", s.handleReplicationCheckpoint)
	s.mux.HandleFunc("GET /replication/graphs/{name}/wal", s.handleReplicationTail)
}

// handleReplicationList is GET /replication/graphs: every durable graph
// with its checkpoint version and incarnation epoch.
func (s *Server) handleReplicationList(w http.ResponseWriter, _ *http.Request) {
	if s.store == nil {
		writeError(w, http.StatusServiceUnavailable, "replication requires a durable store (-data-dir)")
		return
	}
	writeJSON(w, http.StatusOK, s.store.ListDurable())
}

// handleReplicationCheckpoint is GET /replication/graphs/{name}/checkpoint:
// the raw checkpoint bytes, with version/epoch/kind as headers.
func (s *Server) handleReplicationCheckpoint(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeError(w, http.StatusServiceUnavailable, "replication requires a durable store (-data-dir)")
		return
	}
	name := r.PathValue("name")
	ck, err := s.store.ReadCheckpoint(name)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	s.cluster.ships.Inc()
	w.Header().Set(cluster.HeaderVersion, strconv.FormatUint(ck.Version, 10))
	w.Header().Set(cluster.HeaderEpoch, ck.Epoch)
	w.Header().Set(cluster.HeaderKind, ck.Kind)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(ck.Data)))
	_, _ = w.Write(ck.Data)
}

// handleReplicationTail is GET /replication/graphs/{name}/wal?after=V:
// the WAL records published after V, re-verified against their CRCs at
// read time.
func (s *Server) handleReplicationTail(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeError(w, http.StatusServiceUnavailable, "replication requires a durable store (-data-dir)")
		return
	}
	name := r.PathValue("name")
	after, err := strconv.ParseUint(r.URL.Query().Get("after"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "after must be a version number")
		return
	}
	t, terr := s.store.TailSince(name, after)
	if terr != nil {
		writeError(w, http.StatusNotFound, terr.Error())
		return
	}
	s.cluster.tailReqs.Inc()
	s.cluster.tailBatches.Add(float64(len(t.Batches)))
	writeJSON(w, http.StatusOK, t)
}

// leaderWrite guards a mutating handler: on a follower the write is
// refused with 421 Misdirected Request naming the leader (RFC 9110: the
// request was directed at a server unwilling to produce an authoritative
// response — exactly a read replica's position). The guard sits inside
// the tenant middleware, so an unauthorized request is still 401 before
// it learns anything about cluster topology.
func (s *Server) leaderWrite(h http.HandlerFunc) http.HandlerFunc {
	c := s.cluster
	if c == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		if c.cfg.Role == cluster.RoleFollower {
			c.misdirected.Inc()
			w.Header().Set("Location", cluster.BaseURL(c.cfg.Leader)+r.URL.RequestURI())
			writeError(w, http.StatusMisdirectedRequest,
				"this node is a read replica; send writes to the leader at "+c.cfg.Leader)
			return
		}
		h(w, r)
	}
}

// routedRead wraps a graph-scoped read handler: the consistent-hash ring
// places each graph name on one owning peer, and a request landing
// elsewhere is forwarded there — once, enforced by the routed header. A
// follower that owns a graph it has not finished replicating falls back
// to the leader instead of answering 404 for a graph the cluster does
// hold.
func (s *Server) routedRead(h http.HandlerFunc) http.HandlerFunc {
	c := s.cluster
	if c == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(cluster.HeaderRouted) != "" {
			h(w, r)
			return
		}
		name := scopeGraph(r, r.PathValue("name"))
		owner := c.ring.Owner(name)
		if owner != c.cfg.Self {
			s.proxyTo(owner, w, r)
			return
		}
		if c.cfg.Role == cluster.RoleFollower && !s.hasGraph(name) {
			s.proxyTo(c.cfg.Leader, w, r)
			return
		}
		h(w, r)
	}
}

// routedJob wraps a job-scoped handler: cluster job ids carry the
// owning node's address as an "@node" suffix, and a poll arriving at any
// other node is forwarded to it.
func (s *Server) routedJob(h http.HandlerFunc) http.HandlerFunc {
	c := s.cluster
	if c == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(cluster.HeaderRouted) != "" {
			h(w, r)
			return
		}
		id := r.PathValue("id")
		if at := strings.LastIndexByte(id, '@'); at >= 0 {
			if node := id[at+1:]; node != c.cfg.Self {
				s.proxyTo(node, w, r)
				return
			}
		}
		h(w, r)
	}
}

// proxyTo forwards the request to a peer (one hop).
func (s *Server) proxyTo(peer string, w http.ResponseWriter, r *http.Request) {
	c := s.cluster
	rp := c.proxies[peer]
	if rp == nil {
		writeError(w, http.StatusBadGateway, "no route to cluster peer "+peer)
		return
	}
	c.proxied.Inc()
	rp.ServeHTTP(w, r)
}

// hasGraph reports whether the registry currently holds name.
func (s *Server) hasGraph(name string) bool {
	lease, err := s.reg.Acquire(name)
	if err != nil {
		return false
	}
	lease.Release()
	return true
}

// clusterStats is the /stats and debug-bundle cluster section.
type clusterStats struct {
	Role        string   `json:"role"`
	Self        string   `json:"self"`
	Leader      string   `json:"leader"`
	Peers       []string `json:"peers"`
	Proxied     int64    `json:"proxied_requests"`
	Misdirected int64    `json:"misdirected_writes"`

	// Leader-side replication service counters.
	CheckpointShips  int64 `json:"checkpoint_ships,omitempty"`
	TailRequests     int64 `json:"tail_requests,omitempty"`
	WALBatchesServed int64 `json:"wal_batches_served,omitempty"`

	// Follower-side replication progress (per-graph versions and lag).
	Replication *cluster.Status `json:"replication,omitempty"`
}

// clusterStatsSnapshot builds the cluster section; nil single-node.
func (s *Server) clusterStatsSnapshot() *clusterStats {
	c := s.cluster
	if c == nil {
		return nil
	}
	cs := &clusterStats{
		Role:        string(c.cfg.Role),
		Self:        c.cfg.Self,
		Leader:      c.cfg.Leader,
		Peers:       c.cfg.Peers,
		Proxied:     c.proxied.Int(),
		Misdirected: c.misdirected.Int(),
	}
	if c.ships != nil {
		cs.CheckpointShips = c.ships.Int()
		cs.TailRequests = c.tailReqs.Int()
		cs.WALBatchesServed = c.tailBatches.Int()
	}
	if c.repl != nil {
		st := c.repl.StatusSnapshot()
		cs.Replication = &st
	}
	return cs
}

// Replicator exposes the follower's replication engine (nil otherwise).
func (s *Server) Replicator() *cluster.Replicator {
	if s.cluster == nil {
		return nil
	}
	return s.cluster.repl
}

// startCluster launches the follower's replicator (no-op otherwise).
// Separate from initCluster so tests can build a server without racing
// its first poll.
func (s *Server) startCluster() {
	if s.cluster != nil && s.cluster.repl != nil {
		s.cluster.repl.Start()
	}
}
