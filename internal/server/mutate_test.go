package server

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"lagraph/internal/registry"
)

// pathGraphMM is a 4-vertex directed path 0→1→2 with vertex 3 isolated,
// in Matrix Market form (1-based indices).
const pathGraphMM = `%%MatrixMarket matrix coordinate real general
4 4 2
1 2 1.0
2 3 1.0
`

// newMutationServer builds a server with mutation-friendly options.
func newMutationServer(t *testing.T, opts Options) (*httptest.Server, *registry.Registry, *Server) {
	t.Helper()
	reg := registry.New(0)
	srv := New(reg, opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	return ts, reg, srv
}

func loadPathGraph(t *testing.T, base, name string) {
	t.Helper()
	code, body := postBody(t, base, "format=mm&name="+name+"&kind=directed", []byte(pathGraphMM))
	if code != http.StatusCreated {
		t.Fatalf("load: %d %v", code, body)
	}
}

func mutate(t *testing.T, base, name string, ops []map[string]any) (int, map[string]any) {
	t.Helper()
	return doJSON(t, "POST", base+"/graphs/"+name+"/edges", map[string]any{"ops": ops})
}

// TestGraphInfoExposesVersionAndDeltaState is the GET /graphs/{name}
// contract: registry version, cached-property list, and delta-log state
// move with mutations.
func TestGraphInfoExposesVersionAndDeltaState(t *testing.T) {
	// The ratio trigger would compact this tiny graph after one op; keep
	// the delta log visible for the assertions.
	ts, _, _ := newMutationServer(t, Options{CompactRatio: 1000})
	loadPathGraph(t, ts.URL, "g")

	code, info := doJSON(t, "GET", ts.URL+"/graphs/g", nil)
	if code != 200 {
		t.Fatalf("get: %d", code)
	}
	if info["version"].(float64) != 1 || info["pending_delta_ops"].(float64) != 0 {
		t.Fatalf("fresh graph info: %v", info)
	}
	if props, _ := info["cached_properties"].([]any); len(props) != 0 {
		t.Fatalf("fresh graph has cached properties: %v", props)
	}

	// A BFS run materializes AT + RowDegree on the entry.
	if code, body := doJSON(t, "POST", ts.URL+"/graphs/g/algorithms/bfs",
		map[string]any{"source": 0}); code != 200 {
		t.Fatalf("bfs: %d %v", code, body)
	}
	_, info = doJSON(t, "GET", ts.URL+"/graphs/g", nil)
	if !containsStr(info["cached_properties"], "RowDegree") {
		t.Fatalf("cached properties after bfs: %v", info["cached_properties"])
	}

	// A mutation bumps the version, reports the delta log, and carries the
	// degree vectors (incrementally updated) plus NDiag to the snapshot.
	code, res := mutate(t, ts.URL, "g", []map[string]any{
		{"op": "upsert", "src": 2, "dst": 3},
	})
	if code != 200 {
		t.Fatalf("mutate: %d %v", code, res)
	}
	if res["version"].(float64) != 2 || res["edges"].(float64) != 3 {
		t.Fatalf("mutate result: %v", res)
	}

	_, info = doJSON(t, "GET", ts.URL+"/graphs/g", nil)
	if info["version"].(float64) != 2 {
		t.Fatalf("version after mutate: %v", info["version"])
	}
	if info["pending_delta_ops"].(float64) != 1 {
		t.Fatalf("pending_delta_ops after mutate: %v", info["pending_delta_ops"])
	}
	if info["edges"].(float64) != 3 {
		t.Fatalf("edges after mutate: %v", info["edges"])
	}
	if !containsStr(info["cached_properties"], "RowDegree") ||
		!containsStr(info["cached_properties"], "NDiag") {
		t.Fatalf("carried properties: %v", info["cached_properties"])
	}
	if containsStr(info["cached_properties"], "AT") {
		t.Fatalf("AT must be invalidated by mutation: %v", info["cached_properties"])
	}
}

func containsStr(list any, want string) bool {
	items, ok := list.([]any)
	if !ok {
		return false
	}
	for _, it := range items {
		if it == want {
			return true
		}
	}
	return false
}

// TestHTTPSnapshotIsolationAndCacheRekey is the acceptance criterion over
// the wire: a job submitted before a mutation batch is keyed to — and
// computes against — the pre-mutation snapshot even if it runs after the
// batch lands; a submission after the batch sees the new version; and an
// identical post-mutation resubmission hits the re-keyed result cache.
func TestHTTPSnapshotIsolationAndCacheRekey(t *testing.T) {
	ts, _, srv := newMutationServer(t, Options{})
	loadPathGraph(t, ts.URL, "g")

	// Async job against v1.
	code, job := doJSON(t, "POST", ts.URL+"/graphs/g/jobs", map[string]any{
		"algorithm": "bfs", "params": map[string]any{"source": 0},
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, job)
	}
	if job["graph_version"].(float64) != 1 {
		t.Fatalf("job keyed to version %v, want 1", job["graph_version"])
	}
	id := job["id"].(string)

	// Mutation lands (possibly before the job runs — irrelevant: the job
	// holds a lease on the v1 snapshot).
	if code, res := mutate(t, ts.URL, "g", []map[string]any{
		{"op": "upsert", "src": 2, "dst": 3},
	}); code != 200 || res["version"].(float64) != 2 {
		t.Fatalf("mutate: %d %v", code, res)
	}

	// The pre-mutation job reaches {0,1,2} — vertex 3 was not connected
	// in the snapshot it started on.
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, info := doJSON(t, "GET", ts.URL+"/jobs/"+id, nil)
		if code != 200 {
			t.Fatalf("poll: %d", code)
		}
		if info["state"] == "done" {
			break
		}
		if info["state"] == "failed" || info["state"] == "cancelled" {
			t.Fatalf("job ended %v: %v", info["state"], info["error"])
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(2 * time.Millisecond)
	}
	code, result := doJSON(t, "GET", ts.URL+"/jobs/"+id+"/result", nil)
	if code != 200 {
		t.Fatalf("result: %d %v", code, result)
	}
	if result["reached"].(float64) != 3 {
		t.Fatalf("pre-mutation job reached %v, want 3", result["reached"])
	}

	// A synchronous submission after the batch sees the new graph.
	code, after := doJSON(t, "POST", ts.URL+"/graphs/g/algorithms/bfs",
		map[string]any{"source": 0})
	if code != 200 {
		t.Fatalf("post-mutation bfs: %d %v", code, after)
	}
	if after["reached"].(float64) != 4 {
		t.Fatalf("post-mutation bfs reached %v, want 4", after["reached"])
	}

	// An identical post-mutation submission is a pure cache hit on the
	// re-keyed (graph, v2, bfs, params) entry.
	hitsBefore := srv.Jobs().StatsSnapshot().CacheHits
	code, again := doJSON(t, "POST", ts.URL+"/graphs/g/jobs", map[string]any{
		"algorithm": "bfs", "params": map[string]any{"source": 0},
	})
	if code != http.StatusAccepted {
		t.Fatalf("resubmit: %d %v", code, again)
	}
	if again["state"] != "done" || again["cache_hit"] != true {
		t.Fatalf("resubmission not a cache hit: %v", again)
	}
	if again["graph_version"].(float64) != 2 {
		t.Fatalf("resubmission keyed to %v, want 2", again["graph_version"])
	}
	if got := srv.Jobs().StatsSnapshot().CacheHits; got != hitsBefore+1 {
		t.Fatalf("cache hits %d -> %d, want +1", hitsBefore, got)
	}
}

// TestMutateValidationStatuses maps mutation failures onto HTTP codes.
func TestMutateValidationStatuses(t *testing.T) {
	ts, _, _ := newMutationServer(t, Options{MaxBatchOps: 2})
	loadPathGraph(t, ts.URL, "g")

	cases := []struct {
		name string
		ops  []map[string]any
		want int
	}{
		{"unknown graph", []map[string]any{{"op": "upsert", "src": 0, "dst": 1}}, 404},
		{"empty batch", nil, 400},
		{"bad op kind", []map[string]any{{"op": "nope", "src": 0, "dst": 1}}, 400},
		{"out of range", []map[string]any{{"op": "upsert", "src": 0, "dst": 9}}, 400},
		{"too large", []map[string]any{
			{"op": "upsert", "src": 0, "dst": 1},
			{"op": "upsert", "src": 1, "dst": 2},
			{"op": "upsert", "src": 2, "dst": 3},
		}, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		name := "g"
		if tc.name == "unknown graph" {
			name = "zzz"
		}
		if code, body := mutate(t, ts.URL, name, tc.ops); code != tc.want {
			t.Fatalf("%s: %d %v, want %d", tc.name, code, body, tc.want)
		}
	}

	// Nothing above changed the graph.
	_, info := doJSON(t, "GET", ts.URL+"/graphs/g", nil)
	if info["version"].(float64) != 1 || info["edges"].(float64) != 2 {
		t.Fatalf("graph changed by rejected batches: %v", info)
	}
}

// TestMutateWeightedEdges checks weights flow into SSSP results.
func TestMutateWeightedEdges(t *testing.T) {
	ts, _, _ := newMutationServer(t, Options{})
	loadPathGraph(t, ts.URL, "g")

	if code, res := mutate(t, ts.URL, "g", []map[string]any{
		{"op": "upsert", "src": 2, "dst": 3, "weight": 7.5},
	}); code != 200 {
		t.Fatalf("mutate: %d %v", code, res)
	}
	code, out := doJSON(t, "POST", ts.URL+"/graphs/g/algorithms/sssp",
		map[string]any{"source": 0, "delta": 2})
	if code != 200 {
		t.Fatalf("sssp: %d %v", code, out)
	}
	// 0→1 (1.0) →2 (1.0) →3 (7.5): distance to vertex 3 is 9.5.
	entries := out["distances"].(map[string]any)["entries"].([]any)
	var d3 float64 = -1
	for _, e := range entries {
		ent := e.(map[string]any)
		if ent["i"].(float64) == 3 {
			d3 = ent["v"].(float64)
		}
	}
	if d3 != 9.5 {
		t.Fatalf("dist(3) = %v, want 9.5", d3)
	}
}
