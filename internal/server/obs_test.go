package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"lagraph/internal/obs"
	"lagraph/internal/registry"
	"lagraph/internal/store"
)

// TestMetricsEndpointConformance boots the full stack (durable store
// included), exercises a load, a mutation and an algorithm run, and
// asserts GET /metrics serves strictly valid exposition covering every
// subsystem's series with the values the traffic implies.
func TestMetricsEndpointConformance(t *testing.T) {
	st, err := store.Open(store.Options{Dir: t.TempDir(), Fsync: false})
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New(0)
	srv := New(reg, Options{Store: st})
	ts := newHTTPServer(t, srv)

	loadSyntheticGraph(t, ts, "g", "kron", 6)
	if code, body := doJSON(t, "POST", ts+"/graphs/g/edges", map[string]any{
		"ops": []map[string]any{{"op": "upsert", "src": 0, "dst": 5, "weight": 2}},
	}); code != http.StatusOK {
		t.Fatalf("mutate: %d %v", code, body)
	}
	if code, body := doJSON(t, "POST", ts+"/graphs/g/algorithms/pagerank", map[string]any{}); code != http.StatusOK {
		t.Fatalf("pagerank: %d %v", code, body)
	}

	resp, err := http.Get(ts + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	exp, err := obs.ValidateExposition(resp.Body)
	if err != nil {
		t.Fatalf("exposition rejected by strict parser: %v", err)
	}

	// One family per subsystem proves the whole stack is wired into the
	// one scraped registry (the store arrives via AddSource).
	for _, fam := range []string{
		"http_requests_total", "http_request_seconds", "http_in_flight",
		"jobs_submitted_total", "jobs_run_seconds", "jobs_queued",
		"registry_resident_bytes", "registry_property_computes_total", "registry_algorithm_runs_total",
		"stream_batches_total", "stream_apply_seconds", "stream_pending_delta_ops",
		"store_wal_appends_total", "store_wal_append_seconds", "store_checkpoints_total",
	} {
		if _, ok := exp.Types[fam]; !ok {
			t.Errorf("family %s missing from /metrics", fam)
		}
	}

	value := func(name string, labels map[string]string) (float64, bool) {
		for _, s := range exp.Samples {
			if s.Name != name {
				continue
			}
			match := true
			for k, v := range labels {
				if s.Labels[k] != v {
					match = false
					break
				}
			}
			if match {
				return s.Value, true
			}
		}
		return 0, false
	}
	if v, ok := value("jobs_completed_total", nil); !ok || v < 1 {
		t.Errorf("jobs_completed_total = %v (ok=%v), want >= 1", v, ok)
	}
	if v, ok := value("stream_batches_total", nil); !ok || v != 1 {
		t.Errorf("stream_batches_total = %v (ok=%v), want 1", v, ok)
	}
	if v, ok := value("store_wal_appends_total", nil); !ok || v != 1 {
		t.Errorf("store_wal_appends_total = %v (ok=%v), want 1", v, ok)
	}
	if v, ok := value("registry_algorithm_runs_total", nil); !ok || v != 1 {
		t.Errorf("registry_algorithm_runs_total = %v (ok=%v), want 1", v, ok)
	}
	if v, ok := value("http_requests_total", map[string]string{
		"route": "/graphs/{name}/algorithms/{alg}", "method": "POST", "code": "200",
	}); !ok || v != 1 {
		t.Errorf("http_requests_total{algorithms route} = %v (ok=%v), want 1", v, ok)
	}
	if v, ok := value("jobs_run_seconds_count", map[string]string{"algorithm": "pagerank"}); !ok || v < 1 {
		t.Errorf("jobs_run_seconds_count{pagerank} = %v (ok=%v), want >= 1", v, ok)
	}
}

// newHTTPServer wires a Server into httptest with cleanup, returning the
// base URL.
func newHTTPServer(t *testing.T, srv *Server) string {
	t.Helper()
	h := httptest.NewServer(srv.Handler())
	t.Cleanup(h.Close)
	t.Cleanup(srv.Close)
	return h.URL
}

// TestTraceLifecycle runs a job with a client-proposed trace id and
// asserts the id is echoed, the trace is retrievable from /debug/traces,
// and it carries the property-materialization and kernel-run spans.
func TestTraceLifecycle(t *testing.T) {
	reg := registry.New(0)
	srv := New(reg, Options{})
	ts := newHTTPServer(t, srv)

	loadSyntheticGraph(t, ts, "g", "kron", 6)

	req, err := http.NewRequest("POST", ts+"/graphs/g/algorithms/bfs", strings.NewReader(`{"source":0}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Trace-Id", "e2e-trace-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bfs run: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != "e2e-trace-42" {
		t.Fatalf("X-Trace-Id echo = %q, want the proposed id", got)
	}

	// The trace is retrievable by its id with the expected span tree.
	info, ok := srv.Tracer().Get("e2e-trace-42")
	if !ok {
		t.Fatal("finished trace not in the ring")
	}
	names := map[string]bool{}
	for _, sp := range info.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"http POST /graphs/{name}/algorithms/{alg}", "properties", "kernel:bfs"} {
		if !names[want] {
			t.Errorf("span %q missing; trace has %v", want, names)
		}
	}

	// And over HTTP: /debug/traces/{id} serves the same snapshot.
	code, body := doJSON(t, "GET", ts+"/debug/traces/e2e-trace-42", nil)
	if code != http.StatusOK || body["id"] != "e2e-trace-42" {
		t.Fatalf("GET /debug/traces/{id}: %d %v", code, body)
	}
	spans, _ := body["spans"].([]any)
	if len(spans) != len(info.Spans) {
		t.Fatalf("HTTP snapshot has %d spans, tracer has %d", len(spans), len(info.Spans))
	}

	// The listing includes it too (the load request traced as well).
	code, body = doJSON(t, "GET", ts+"/debug/traces", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /debug/traces: %d", code)
	}
	if n, _ := body["count"].(float64); n < 2 {
		t.Fatalf("trace ring holds %v traces, want >= 2", n)
	}

	// An invalid proposed id is replaced, not adopted.
	req, _ = http.NewRequest("GET", ts+"/healthz", nil)
	req.Header.Set("X-Trace-Id", "bad id with spaces")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Trace-Id"); got == "" || got == "bad id with spaces" {
		t.Fatalf("invalid proposed id handling: echoed %q", got)
	}
}

// TestStatsReadsObsInstruments asserts /stats and /metrics agree: the
// counters are defined once and both endpoints read the same instruments.
func TestStatsReadsObsInstruments(t *testing.T) {
	reg := registry.New(0)
	srv := New(reg, Options{})
	ts := newHTTPServer(t, srv)

	loadSyntheticGraph(t, ts, "g", "kron", 5)
	if code, _ := doJSON(t, "POST", ts+"/graphs/g/algorithms/pagerank", map[string]any{}); code != http.StatusOK {
		t.Fatalf("pagerank: %d", code)
	}

	code, stats := doJSON(t, "GET", ts+"/stats", nil)
	if code != http.StatusOK {
		t.Fatalf("/stats: %d", code)
	}
	jobsStats, _ := stats["jobs"].(map[string]any)
	if jobsStats["completed"] != 1.0 {
		t.Fatalf("stats jobs.completed = %v, want 1", jobsStats["completed"])
	}
	if srv.Jobs().StatsSnapshot().Completed != 1 {
		t.Fatal("engine snapshot disagrees with /stats")
	}

	resp, err := http.Get(ts + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	exp, err := obs.ValidateExposition(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range exp.Samples {
		if s.Name == "jobs_completed_total" {
			if s.Value != 1 {
				t.Fatalf("jobs_completed_total = %v, want 1 (same instrument as /stats)", s.Value)
			}
			return
		}
	}
	t.Fatal("jobs_completed_total not scraped")
}
