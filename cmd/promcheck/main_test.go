package main

import (
	"strings"
	"testing"
)

const validExposition = `# HELP jobs_queued Jobs waiting for a worker.
# TYPE jobs_queued gauge
jobs_queued 0
# HELP store_wal_appends_total WAL batches appended.
# TYPE store_wal_appends_total counter
store_wal_appends_total 12
`

func runCheck(t *testing.T, args []string, input string) (code int, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, strings.NewReader(input), &out, &errb)
	return code, errb.String()
}

func TestRunValidWithRequired(t *testing.T) {
	code, stderr := runCheck(t, []string{"-require", "jobs_queued,store_wal_appends_total"}, validExposition)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
}

// TestRunReportsEveryMissingFamily is the -require contract: one run
// names the complete gap — every missing family on its own line — and
// exits non-zero, instead of stopping at the first hole.
func TestRunReportsEveryMissingFamily(t *testing.T) {
	code, stderr := runCheck(t, []string{
		"-require", "jobs_queued,component_ready",
		"-require", "incidents_total",
	}, validExposition)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, stderr)
	}
	for _, want := range []string{
		"missing required family: component_ready",
		"missing required family: incidents_total",
		"2 of 3 required families missing",
	} {
		if !strings.Contains(stderr, want) {
			t.Errorf("stderr missing %q:\n%s", want, stderr)
		}
	}
	if strings.Contains(stderr, "missing required family: jobs_queued") {
		t.Errorf("present family reported missing:\n%s", stderr)
	}
}

func TestRunInvalidExposition(t *testing.T) {
	code, stderr := runCheck(t, []string{}, "untyped_sample 1\n")
	if code != 1 || !strings.Contains(stderr, "invalid exposition") {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
}

func TestRunBadFlag(t *testing.T) {
	if code, _ := runCheck(t, []string{"-no-such-flag"}, ""); code != 2 {
		t.Fatalf("exit %d, want 2 for a flag parse error", code)
	}
}
