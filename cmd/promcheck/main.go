// Command promcheck validates Prometheus text exposition (format 0.0.4)
// with the strict parser from internal/obs: every sample must belong to a
// declared TYPE family, label syntax and escaping must be exact, and
// histograms must have monotone cumulative buckets ending in +Inf with a
// matching _count and a _sum.
//
// Usage:
//
//	curl -s localhost:8080/metrics | promcheck
//	promcheck -url http://localhost:8080/metrics
//	promcheck -url http://localhost:8080/metrics \
//	    -require jobs_queued,store_wal_appends_total \
//	    -require go_goroutines,component_ready,incidents_total
//
// -require repeats and takes comma-separated lists; when families are
// missing, promcheck prints every missing family (one per line) before
// exiting non-zero, so one CI run reports the whole gap instead of the
// first hole. Exit status 0 means the exposition parsed and every
// required family is present; CI runs it against a live lagraphd to keep
// /metrics honest.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"lagraph/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is main minus the process boundary, so tests can drive it.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("promcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		url      = fs.String("url", "", "scrape this endpoint instead of reading stdin")
		quiet    = fs.Bool("q", false, "print nothing on success")
		required []string
	)
	fs.Func("require", "comma-separated metric families that must be present (repeatable)", func(v string) error {
		for _, name := range strings.Split(v, ",") {
			if name = strings.TrimSpace(name); name != "" {
				required = append(required, name)
			}
		}
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return 2
	}

	in := stdin
	if *url != "" {
		c := &http.Client{Timeout: 10 * time.Second}
		resp, err := c.Get(*url)
		if err != nil {
			fmt.Fprintf(stderr, "promcheck: scraping %s: %v\n", *url, err)
			return 1
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fmt.Fprintf(stderr, "promcheck: scraping %s: status %s\n", *url, resp.Status)
			return 1
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			fmt.Fprintf(stderr, "promcheck: scraping %s: unexpected Content-Type %q\n", *url, ct)
			return 1
		}
		in = resp.Body
	}

	exp, err := obs.ValidateExposition(in)
	if err != nil {
		fmt.Fprintf(stderr, "promcheck: invalid exposition: %v\n", err)
		return 1
	}

	var missing []string
	for _, name := range required {
		if _, ok := exp.Types[name]; !ok {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		// Report the complete gap, not the first hole: one CI failure
		// names every family that fell out of the exposition.
		for _, name := range missing {
			fmt.Fprintf(stderr, "promcheck: missing required family: %s\n", name)
		}
		fmt.Fprintf(stderr, "promcheck: %d of %d required families missing\n", len(missing), len(required))
		return 1
	}
	if !*quiet {
		fmt.Fprintf(stdout, "ok: %d families, %d samples\n", len(exp.Types), len(exp.Samples))
	}
	return 0
}
