// Command promcheck validates Prometheus text exposition (format 0.0.4)
// with the strict parser from internal/obs: every sample must belong to a
// declared TYPE family, label syntax and escaping must be exact, and
// histograms must have monotone cumulative buckets ending in +Inf with a
// matching _count and a _sum.
//
// Usage:
//
//	curl -s localhost:8080/metrics | promcheck
//	promcheck -url http://localhost:8080/metrics
//	promcheck -url http://localhost:8080/metrics -require jobs_queued,store_wal_appends_total
//
// Exit status 0 means the exposition parsed and every -require family is
// present; CI runs it against a live lagraphd to keep /metrics honest.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"lagraph/internal/obs"
)

func main() {
	var (
		url     = flag.String("url", "", "scrape this endpoint instead of reading stdin")
		require = flag.String("require", "", "comma-separated metric families that must be present")
		quiet   = flag.Bool("q", false, "print nothing on success")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	if *url != "" {
		c := &http.Client{Timeout: 10 * time.Second}
		resp, err := c.Get(*url)
		if err != nil {
			fatal("scraping %s: %v", *url, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fatal("scraping %s: status %s", *url, resp.Status)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			fatal("scraping %s: unexpected Content-Type %q", *url, ct)
		}
		in = resp.Body
	}

	exp, err := obs.ValidateExposition(in)
	if err != nil {
		fatal("invalid exposition: %v", err)
	}

	var missing []string
	for _, name := range strings.Split(*require, ",") {
		if name = strings.TrimSpace(name); name == "" {
			continue
		}
		if _, ok := exp.Types[name]; !ok {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		fatal("missing required families: %s", strings.Join(missing, ", "))
	}
	if !*quiet {
		fmt.Printf("ok: %d families, %d samples\n", len(exp.Types), len(exp.Samples))
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "promcheck: "+format+"\n", args...)
	os.Exit(1)
}
