// Command algoref regenerates the README's "Algorithm reference" section
// from the algorithm catalog (internal/algo), so the documentation can
// never drift from the registered descriptors. It is wired to
// `go generate ./internal/algo`, and a test in that package fails the
// build while the section is stale.
//
// Usage:
//
//	algoref -readme README.md          # rewrite the section in place
//	algoref -readme README.md -check   # exit 1 if the section is stale
package main

import (
	"flag"
	"fmt"
	"os"

	"lagraph/internal/algo"
)

func main() {
	var (
		readme = flag.String("readme", "README.md", "path to the README to rewrite")
		check  = flag.Bool("check", false, "verify freshness instead of rewriting")
	)
	flag.Parse()

	old, err := os.ReadFile(*readme)
	if err != nil {
		fatal("%v", err)
	}
	updated, err := algo.Default().SpliceMarkdown(string(old))
	if err != nil {
		fatal("%v", err)
	}
	if *check {
		if updated != string(old) {
			fatal("%s is stale; run `go generate ./internal/algo`", *readme)
		}
		return
	}
	if updated == string(old) {
		return
	}
	if err := os.WriteFile(*readme, []byte(updated), 0o644); err != nil {
		fatal("%v", err)
	}
	fmt.Printf("algoref: rewrote algorithm reference in %s\n", *readme)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "algoref: "+format+"\n", args...)
	os.Exit(1)
}
