package main

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"lagraph/internal/grb"
	"lagraph/internal/lagraph"
)

// writeTestMatrix writes a small weighted matrix (with a self-loop and a
// comment line, the awkward Matrix Market cases) to path.
func writeTestMatrix(t *testing.T, path string) *grb.Matrix[float64] {
	t.Helper()
	rows := []int{0, 0, 1, 2, 3, 2}
	cols := []int{1, 3, 2, 2, 0, 0}
	vals := []float64{1.5, -2, 0.25, 3, 42, 0.5}
	m, err := grb.MatrixFromTuples(4, 4, rows, cols, vals, nil)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := lagraph.MMWrite(f, m); err != nil {
		t.Fatal(err)
	}
	return m
}

// readBack loads a converted file in the given format.
func readBack(t *testing.T, path, format string) *grb.Matrix[float64] {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var m *grb.Matrix[float64]
	if format == "mm" {
		m, err = lagraph.MMRead(f)
	} else {
		m, err = lagraph.BinRead(f)
	}
	if err != nil {
		t.Fatalf("read %s (%s): %v", path, format, err)
	}
	return m
}

// sameMatrix compares two matrices entry for entry.
func sameMatrix(t *testing.T, a, b *grb.Matrix[float64]) {
	t.Helper()
	if a.NRows() != b.NRows() || a.NCols() != b.NCols() {
		t.Fatalf("dims %dx%d vs %dx%d", a.NRows(), a.NCols(), b.NRows(), b.NCols())
	}
	ar, ac, av := a.ExtractTuples()
	br, bc, bv := b.ExtractTuples()
	if !reflect.DeepEqual(ar, br) || !reflect.DeepEqual(ac, bc) || !reflect.DeepEqual(av, bv) {
		t.Fatalf("entries differ:\n(%v, %v, %v)\n(%v, %v, %v)", ar, ac, av, br, bc, bv)
	}
}

func TestRoundTripMMToBinToMM(t *testing.T) {
	dir := t.TempDir()
	mtx := filepath.Join(dir, "g.mtx")
	bin := filepath.Join(dir, "g.grb")
	mtx2 := filepath.Join(dir, "g2.mtx")

	orig := writeTestMatrix(t, mtx)

	// mm -> bin
	var sum bytes.Buffer
	if err := run(config{in: mtx, out: bin, from: "mm", to: "bin"}, &sum); err != nil {
		t.Fatalf("mm->bin: %v", err)
	}
	if !strings.Contains(sum.String(), "4x4, 6 entries") {
		t.Fatalf("summary = %q", sum.String())
	}
	sameMatrix(t, orig, readBack(t, bin, "bin"))

	// bin -> mm
	if err := run(config{in: bin, out: mtx2, from: "bin", to: "mm"}, &sum); err != nil {
		t.Fatalf("bin->mm: %v", err)
	}
	sameMatrix(t, orig, readBack(t, mtx2, "mm"))

	// The full circle reproduces the original text file's matrix exactly.
	sameMatrix(t, readBack(t, mtx, "mm"), readBack(t, mtx2, "mm"))
}

func TestInfoOnlyWritesNothing(t *testing.T) {
	dir := t.TempDir()
	mtx := filepath.Join(dir, "g.mtx")
	writeTestMatrix(t, mtx)

	var sum bytes.Buffer
	if err := run(config{in: mtx, from: "mm", info: true}, &sum); err != nil {
		t.Fatalf("info: %v", err)
	}
	if !strings.Contains(sum.String(), "4x4, 6 entries") {
		t.Fatalf("summary = %q", sum.String())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("info mode created files: %v", entries)
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	mtx := filepath.Join(dir, "g.mtx")
	writeTestMatrix(t, mtx)
	var sum bytes.Buffer

	if err := run(config{in: filepath.Join(dir, "nope.mtx"), from: "mm", info: true}, &sum); err == nil {
		t.Fatal("missing input accepted")
	}
	if err := run(config{in: mtx, from: "tsv", info: true}, &sum); err == nil {
		t.Fatal("unknown input format accepted")
	}
	if err := run(config{in: mtx, from: "mm", to: "tsv", out: filepath.Join(dir, "o")}, &sum); err == nil {
		t.Fatal("unknown output format accepted")
	}
	if err := run(config{in: mtx, from: "mm", to: "bin"}, &sum); err == nil {
		t.Fatal("missing -out accepted")
	}
	// A binary reader pointed at Matrix Market text must fail cleanly.
	if err := run(config{in: mtx, from: "bin", info: true}, &sum); err == nil {
		t.Fatal("bin reader accepted mm text")
	}
}
