// Command mmconvert converts matrices between Matrix Market text form and
// the library's binary container (paper §V's BinRead/BinWrite pair), and
// prints a summary.
//
// Usage:
//
//	mmconvert -in graph.mtx -out graph.grb          # mm -> bin
//	mmconvert -in graph.grb -out graph.mtx -from bin -to mm
//	mmconvert -in graph.mtx -info                   # just summarise
package main

import (
	"flag"
	"fmt"
	"os"

	"lagraph/internal/grb"
	"lagraph/internal/lagraph"
)

func main() {
	var (
		in   = flag.String("in", "", "input file")
		out  = flag.String("out", "", "output file (omit with -info)")
		from = flag.String("from", "mm", "input format: mm or bin")
		to   = flag.String("to", "bin", "output format: mm or bin")
		info = flag.Bool("info", false, "print matrix summary only")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()

	var m *grb.Matrix[float64]
	switch *from {
	case "mm":
		m, err = lagraph.MMRead(f)
	case "bin":
		m, err = lagraph.BinRead(f)
	default:
		fatal("unknown input format %q", *from)
	}
	if err != nil {
		fatal("reading %s: %v", *in, err)
	}
	fmt.Fprintf(os.Stderr, "%s: %dx%d, %d entries\n", *in, m.NRows(), m.NCols(), m.NVals())
	if *info {
		return
	}
	if *out == "" {
		fatal("missing -out")
	}
	g, err := os.Create(*out)
	if err != nil {
		fatal("%v", err)
	}
	defer g.Close()
	switch *to {
	case "mm":
		err = lagraph.MMWrite(g, m)
	case "bin":
		err = lagraph.BinWrite(g, m)
	default:
		fatal("unknown output format %q", *to)
	}
	if err != nil {
		fatal("writing %s: %v", *out, err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mmconvert: "+format+"\n", args...)
	os.Exit(1)
}
