// Command mmconvert converts matrices between Matrix Market text form and
// the library's binary container (paper §V's BinRead/BinWrite pair), and
// prints a summary.
//
// Usage:
//
//	mmconvert -in graph.mtx -out graph.grb          # mm -> bin
//	mmconvert -in graph.grb -out graph.mtx -from bin -to mm
//	mmconvert -in graph.mtx -info                   # just summarise
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"lagraph/internal/grb"
	"lagraph/internal/lagraph"
)

// config is one conversion request, parsed from flags (or built directly
// by tests).
type config struct {
	in, out  string
	from, to string
	info     bool
}

func main() {
	var cfg config
	flag.StringVar(&cfg.in, "in", "", "input file")
	flag.StringVar(&cfg.out, "out", "", "output file (omit with -info)")
	flag.StringVar(&cfg.from, "from", "mm", "input format: mm or bin")
	flag.StringVar(&cfg.to, "to", "bin", "output format: mm or bin")
	flag.BoolVar(&cfg.info, "info", false, "print matrix summary only")
	flag.Parse()
	if cfg.in == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(cfg, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "mmconvert: %v\n", err)
		os.Exit(1)
	}
}

// run performs one conversion, writing the summary line to summary.
func run(cfg config, summary io.Writer) error {
	f, err := os.Open(cfg.in)
	if err != nil {
		return err
	}
	defer f.Close()

	var m *grb.Matrix[float64]
	switch cfg.from {
	case "mm":
		m, err = lagraph.MMRead(f)
	case "bin":
		m, err = lagraph.BinRead(f)
	default:
		return fmt.Errorf("unknown input format %q", cfg.from)
	}
	if err != nil {
		return fmt.Errorf("reading %s: %w", cfg.in, err)
	}
	fmt.Fprintf(summary, "%s: %dx%d, %d entries\n", cfg.in, m.NRows(), m.NCols(), m.NVals())
	if cfg.info {
		return nil
	}
	if cfg.out == "" {
		return fmt.Errorf("missing -out")
	}
	g, err := os.Create(cfg.out)
	if err != nil {
		return err
	}
	defer g.Close()
	switch cfg.to {
	case "mm":
		err = lagraph.MMWrite(g, m)
	case "bin":
		err = lagraph.BinWrite(g, m)
	default:
		return fmt.Errorf("unknown output format %q", cfg.to)
	}
	if err != nil {
		return fmt.Errorf("writing %s: %w", cfg.out, err)
	}
	return g.Close()
}
