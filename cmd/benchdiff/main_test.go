package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mkCell(alg, impl, graph string, secs float64, iters int) cell {
	return cell{
		Algorithm: alg, Impl: impl, Graph: graph, Seconds: secs,
		Report: &report{Iterations: iters},
	}
}

func verdictOf(t *testing.T, d diff, key string) verdict {
	t.Helper()
	for _, v := range d.Verdicts {
		if v.Cell == key {
			return v
		}
	}
	t.Fatalf("no verdict for %s in %v", key, d.Verdicts)
	return verdict{}
}

func TestCompareVerdicts(t *testing.T) {
	base := record{Schema: "lagraph-bench/v2", GitRev: "aaa", Cells: []cell{
		mkCell("BFS", "SS", "Kron", 1.0, 5),
		mkCell("PR", "SS", "Kron", 1.0, 12),
		mkCell("CC", "SS", "Kron", 1.0, 3),
		mkCell("SSSP", "SS", "Kron", 1.0, 7),
		mkCell("TC", "SS", "Kron", 0.001, 0),
		{Algorithm: "BC", Impl: "SS", Graph: "Kron", Skipped: "unsupported"},
		mkCell("OLD", "SS", "Kron", 1.0, 1),
	}}
	cur := record{Schema: "lagraph-bench/v2", GitRev: "bbb", Cells: []cell{
		mkCell("BFS", "SS", "Kron", 1.1, 5),  // within threshold -> ok
		mkCell("PR", "SS", "Kron", 3.0, 12),  // 3x slower -> slower
		mkCell("CC", "SS", "Kron", 0.4, 3),   // 2.5x faster -> faster
		mkCell("SSSP", "SS", "Kron", 1.0, 9), // same time, drifted iters
		mkCell("TC", "SS", "Kron", 0.002, 0), // both under noise floor
		{Algorithm: "BC", Impl: "SS", Graph: "Kron", Skipped: "unsupported"},
		mkCell("NEW", "SS", "Kron", 1.0, 1),
	}}
	d := compare(base, cur, 1.5, 0.05)

	want := map[string]string{
		"BFS/SS/Kron":  "ok",
		"PR/SS/Kron":   "slower",
		"CC/SS/Kron":   "faster",
		"SSSP/SS/Kron": "iter-drift",
		"TC/SS/Kron":   "skipped",
		"BC/SS/Kron":   "skipped",
		"NEW/SS/Kron":  "added",
		"OLD/SS/Kron":  "removed",
	}
	for key, wv := range want {
		if got := verdictOf(t, d, key).Verdict; got != wv {
			t.Errorf("%s: verdict %q, want %q", key, got, wv)
		}
	}
	if d.Regressions != 2 { // PR slower + SSSP iter-drift
		t.Errorf("regressions = %d, want 2", d.Regressions)
	}
	if v := verdictOf(t, d, "SSSP/SS/Kron"); v.BaseIters != 7 || v.CurIters != 9 {
		t.Errorf("iter-drift iters: %+v", v)
	}
	if d.Baseline != "aaa" || d.Current != "bbb" {
		t.Errorf("side labels: %q vs %q", d.Baseline, d.Current)
	}
}

// TestCompareV1Baseline: a v1 record carries no reports, so comparison
// degrades to time-only — an iteration change invisible to v1 must NOT
// produce iter-drift.
func TestCompareV1Baseline(t *testing.T) {
	base := record{Schema: "lagraph-bench/v1", Cells: []cell{
		{Algorithm: "BFS", Impl: "SS", Graph: "Kron", Seconds: 1.0}, // no report
	}}
	cur := record{Schema: "lagraph-bench/v2", Cells: []cell{
		mkCell("BFS", "SS", "Kron", 1.0, 99),
	}}
	d := compare(base, cur, 1.5, 0.05)
	v := verdictOf(t, d, "BFS/SS/Kron")
	if v.Verdict != "ok" {
		t.Errorf("v1 baseline verdict %q, want ok (no iteration data to drift)", v.Verdict)
	}
	if d.Regressions != 0 {
		t.Errorf("regressions = %d, want 0", d.Regressions)
	}
}

// TestIterDriftOutranksTiming: a cell that is both slower and drifted
// reports iter-drift — behaviour change is the more actionable signal.
func TestIterDriftOutranksTiming(t *testing.T) {
	base := record{Schema: "lagraph-bench/v2", Cells: []cell{mkCell("PR", "SS", "Kron", 1.0, 10)}}
	cur := record{Schema: "lagraph-bench/v2", Cells: []cell{mkCell("PR", "SS", "Kron", 9.0, 20)}}
	d := compare(base, cur, 1.5, 0.05)
	if v := verdictOf(t, d, "PR/SS/Kron"); v.Verdict != "iter-drift" {
		t.Errorf("verdict %q, want iter-drift", v.Verdict)
	}
}

// TestSideLabels: "unknown"/empty revisions fall back to date, then role.
func TestSideLabels(t *testing.T) {
	if got := side(record{GitRev: "unknown", Date: "2026-08-07"}, "baseline"); got != "2026-08-07" {
		t.Errorf("side = %q, want the date", got)
	}
	if got := side(record{}, "baseline"); got != "baseline" {
		t.Errorf("side = %q, want role", got)
	}
	if got := side(record{GitRev: "0123456789abcdef"}, "x"); got != "0123456789ab" {
		t.Errorf("side = %q, want 12-char rev", got)
	}
}

// TestRunEndToEnd drives run() over real files, checking the markdown and
// JSON artifacts plus the regression count main() turns into an exit code.
func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	writeRec := func(name string, r record) string {
		t.Helper()
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	base := writeRec("base.json", record{Schema: "lagraph-bench/v2", GitRev: "base1234",
		Cells: []cell{mkCell("BFS", "SS", "Kron", 1.0, 5)}})
	cur := writeRec("cur.json", record{Schema: "lagraph-bench/v2", GitRev: "cur5678",
		Cells: []cell{mkCell("BFS", "SS", "Kron", 5.0, 5)}}) // injected regression

	mdPath := filepath.Join(dir, "diff.md")
	jsonPath := filepath.Join(dir, "diff.json")
	var sb strings.Builder
	regressions, err := run(base, cur, 1.5, 0.05, mdPath, jsonPath, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1", regressions)
	}
	if !strings.Contains(sb.String(), "**slower**") || !strings.Contains(sb.String(), "1 regression") {
		t.Errorf("stdout markdown missing verdict:\n%s", sb.String())
	}
	md, err := os.ReadFile(mdPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(md) != sb.String() {
		t.Error("-md file differs from stdout markdown")
	}
	var d diff
	b, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &d); err != nil {
		t.Fatal(err)
	}
	if d.Regressions != 1 || len(d.Verdicts) != 1 || d.Verdicts[0].Verdict != "slower" {
		t.Errorf("json diff: %+v", d)
	}

	// No regression -> 0 (the success path CI takes every day).
	regressions, err = run(base, base, 1.5, 0.05, "", "", &strings.Builder{})
	if err != nil || regressions != 0 {
		t.Fatalf("self-diff: %d regressions, err %v", regressions, err)
	}
}

// TestReadRecordRejectsGarbage: non-records fail loudly, not with a
// zero-cell "everything removed" diff.
func TestReadRecordRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(p, []byte(`{"schema":"something-else"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readRecord(p); err == nil {
		t.Fatal("expected schema error")
	}
	if _, err := readRecord(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("expected read error")
	}
}
