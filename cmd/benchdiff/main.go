// Command benchdiff compares two gapbench perf records (lagraph-bench/v1
// or /v2) cell by cell and renders a verdict table, so CI can gate merges
// on the committed baseline under bench/baselines/.
//
// Usage:
//
//	benchdiff -threshold 1.5 bench/baselines/small-scale10.json BENCH_today.json
//	benchdiff -md diff.md -json diff.json baseline.json current.json
//
// Each (algorithm, impl, graph) cell present in both records gets one of:
//
//	ok         within threshold either way
//	faster     current is at least threshold× faster (celebrate, re-baseline)
//	slower     current is at least threshold× slower — a REGRESSION
//	iter-drift kernel iteration counts differ between records — a REGRESSION
//	           (deterministic seeds make iterations a machine-independent
//	           correctness canary, unlike wall time)
//	added      cell only in the current record
//	removed    cell only in the baseline
//	skipped    either side recorded a skip, or both times sit under the
//	           -min-seconds noise floor
//
// Iteration drift is checked only when both records embed run reports
// (schema v2); diffing against a v1 baseline silently degrades to
// time-only comparison. The exit status is nonzero iff any cell is
// slower or iter-drift, which is what the CI gate keys on.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// The record structs are deliberately local to this command rather than
// imported from cmd/gapbench: benchdiff must keep reading every schema
// revision ever committed under bench/baselines/, so its view of the
// format is pinned here and only ever widened.

type record struct {
	Schema     string `json:"schema"`
	Date       string `json:"date"`
	GitRev     string `json:"git_rev"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Scale      int    `json:"scale"`
	EdgeFactor int    `json:"edge_factor"`
	Trials     int    `json:"trials"`
	Seed       uint64 `json:"seed"`
	Cells      []cell `json:"cells"`
}

type cell struct {
	Algorithm string  `json:"algorithm"`
	Impl      string  `json:"impl"`
	Graph     string  `json:"graph"`
	Seconds   float64 `json:"seconds"`
	GTEPS     float64 `json:"gteps"`
	Skipped   string  `json:"skipped"`
	Report    *report `json:"report"`
}

// report is the slice of the v2 run report benchdiff cares about.
type report struct {
	Iterations int    `json:"iterations"`
	Method     string `json:"method"`
}

func (c cell) key() string { return c.Algorithm + "/" + c.Impl + "/" + c.Graph }

// side labels a record in the diff output: its git revision when the
// record carries a useful one, else its date, else a fixed role name.
func side(r record, role string) string {
	if r.GitRev != "" && r.GitRev != "unknown" {
		if len(r.GitRev) > 12 {
			return r.GitRev[:12]
		}
		return r.GitRev
	}
	if r.Date != "" {
		return r.Date
	}
	return role
}

// verdict is one cell's comparison outcome.
type verdict struct {
	Cell        string  `json:"cell"` // algorithm/impl/graph
	Verdict     string  `json:"verdict"`
	BaseSeconds float64 `json:"base_seconds,omitempty"`
	CurSeconds  float64 `json:"cur_seconds,omitempty"`
	Ratio       float64 `json:"ratio,omitempty"` // cur/base
	GTEPSDelta  float64 `json:"gteps_delta,omitempty"`
	BaseIters   int     `json:"base_iters,omitempty"`
	CurIters    int     `json:"cur_iters,omitempty"`
	Note        string  `json:"note,omitempty"`
}

// diff is the full comparison result (the -json output shape).
type diff struct {
	Baseline    string    `json:"baseline"`
	Current     string    `json:"current"`
	Threshold   float64   `json:"threshold"`
	MinSeconds  float64   `json:"min_seconds"`
	Verdicts    []verdict `json:"verdicts"`
	Regressions int       `json:"regressions"`
}

// compare walks the union of both records' cells and assigns verdicts.
func compare(base, cur record, threshold, minSeconds float64) diff {
	d := diff{
		Baseline:   side(base, "baseline"),
		Current:    side(cur, "current"),
		Threshold:  threshold,
		MinSeconds: minSeconds,
	}
	baseBy := map[string]cell{}
	for _, c := range base.Cells {
		baseBy[c.key()] = c
	}
	curBy := map[string]cell{}
	order := []string{}
	for _, c := range cur.Cells {
		curBy[c.key()] = c
		order = append(order, c.key())
	}
	// Removed cells come after the current record's ordering, sorted.
	var removed []string
	for _, c := range base.Cells {
		if _, ok := curBy[c.key()]; !ok {
			removed = append(removed, c.key())
		}
	}
	sort.Strings(removed)
	order = append(order, removed...)

	for _, key := range order {
		b, inBase := baseBy[key]
		c, inCur := curBy[key]
		v := verdict{Cell: key}
		switch {
		case !inBase:
			v.Verdict = "added"
			v.CurSeconds = c.Seconds
		case !inCur:
			v.Verdict = "removed"
			v.BaseSeconds = b.Seconds
		case b.Skipped != "" || c.Skipped != "":
			v.Verdict = "skipped"
			v.Note = firstNonEmpty(c.Skipped, b.Skipped)
		default:
			v.BaseSeconds, v.CurSeconds = b.Seconds, c.Seconds
			v.GTEPSDelta = c.GTEPS - b.GTEPS
			if b.Seconds > 0 {
				v.Ratio = c.Seconds / b.Seconds
			}
			// Iteration drift outranks timing: with deterministic generator
			// seeds both records ran the same graph, so a kernel doing a
			// different number of iterations changed behaviour, not speed.
			if b.Report != nil && c.Report != nil {
				v.BaseIters, v.CurIters = b.Report.Iterations, c.Report.Iterations
				if b.Report.Iterations != c.Report.Iterations {
					v.Verdict = "iter-drift"
					v.Note = fmt.Sprintf("iterations %d -> %d", b.Report.Iterations, c.Report.Iterations)
					break
				}
				if b.Report.Method != "" && c.Report.Method != "" && b.Report.Method != c.Report.Method {
					// A method switch is worth a note but is not by itself a
					// regression — the auto-selection may legitimately flip.
					v.Note = fmt.Sprintf("method %s -> %s", b.Report.Method, c.Report.Method)
				}
			}
			switch {
			case b.Seconds < minSeconds && c.Seconds < minSeconds:
				// Both under the noise floor: timing says nothing.
				v.Verdict = "skipped"
				if v.Note == "" {
					v.Note = fmt.Sprintf("both under %gs noise floor", minSeconds)
				}
			case v.Ratio > threshold:
				v.Verdict = "slower"
			case v.Ratio > 0 && v.Ratio < 1/threshold:
				v.Verdict = "faster"
			default:
				v.Verdict = "ok"
			}
		}
		if v.Verdict == "slower" || v.Verdict == "iter-drift" {
			d.Regressions++
		}
		d.Verdicts = append(d.Verdicts, v)
	}
	return d
}

func firstNonEmpty(a, b string) string {
	if a != "" {
		return a
	}
	return b
}

// markdown renders the diff as a GitHub-flavoured table (the CI artifact).
func markdown(w io.Writer, d diff) {
	fmt.Fprintf(w, "# benchdiff: %s vs %s\n\n", d.Baseline, d.Current)
	fmt.Fprintf(w, "threshold %gx, noise floor %gs. ", d.Threshold, d.MinSeconds)
	if d.Regressions == 0 {
		fmt.Fprintf(w, "**No regressions.**\n\n")
	} else {
		fmt.Fprintf(w, "**%d regression(s).**\n\n", d.Regressions)
	}
	fmt.Fprintln(w, "| cell | verdict | base s | cur s | ratio | ΔGTEPS | note |")
	fmt.Fprintln(w, "|------|---------|-------:|------:|------:|-------:|------|")
	for _, v := range d.Verdicts {
		mark := v.Verdict
		if v.Verdict == "slower" || v.Verdict == "iter-drift" {
			mark = "**" + v.Verdict + "**"
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s | %s | %s | %s |\n",
			v.Cell, mark,
			secCell(v.BaseSeconds), secCell(v.CurSeconds),
			ratioCell(v.Ratio), gtepsCell(v.GTEPSDelta), v.Note)
	}
}

func secCell(s float64) string {
	if s == 0 {
		return "-"
	}
	return fmt.Sprintf("%.4f", s)
}

func ratioCell(r float64) string {
	if r == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", r)
}

func gtepsCell(g float64) string {
	if g == 0 {
		return "-"
	}
	return fmt.Sprintf("%+.3f", g)
}

func readRecord(path string) (record, error) {
	var r record
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	if !strings.HasPrefix(r.Schema, "lagraph-bench/") {
		return r, fmt.Errorf("%s: schema %q is not a lagraph-bench record", path, r.Schema)
	}
	return r, nil
}

// run is main minus flag parsing and exiting, for tests. It returns the
// number of regressions found (the caller exits nonzero iff > 0).
func run(basePath, curPath string, threshold, minSeconds float64, mdOut, jsonOut string, stdout io.Writer) (int, error) {
	base, err := readRecord(basePath)
	if err != nil {
		return 0, err
	}
	cur, err := readRecord(curPath)
	if err != nil {
		return 0, err
	}
	d := compare(base, cur, threshold, minSeconds)
	markdown(stdout, d)
	if mdOut != "" {
		var sb strings.Builder
		markdown(&sb, d)
		if err := os.WriteFile(mdOut, []byte(sb.String()), 0o644); err != nil {
			return d.Regressions, err
		}
	}
	if jsonOut != "" {
		b, err := json.MarshalIndent(d, "", "  ")
		if err != nil {
			return d.Regressions, err
		}
		if err := os.WriteFile(jsonOut, append(b, '\n'), 0o644); err != nil {
			return d.Regressions, err
		}
	}
	return d.Regressions, nil
}

func main() {
	var (
		threshold  = flag.Float64("threshold", 1.5, "slowdown ratio (current/baseline) above which a cell is a regression")
		minSeconds = flag.Float64("min-seconds", 0.05, "cells with both sides under this many seconds are too noisy to judge")
		mdOut      = flag.String("md", "", "also write the markdown table to this file")
		jsonOut    = flag.String("json", "", "also write the structured diff to this file")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] baseline.json current.json")
		flag.Usage()
		os.Exit(2)
	}
	if *threshold <= 1 {
		fmt.Fprintln(os.Stderr, "benchdiff: -threshold must be > 1")
		os.Exit(2)
	}
	regressions, err := run(flag.Arg(0), flag.Arg(1), *threshold, *minSeconds, *mdOut, *jsonOut, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	if regressions > 0 {
		os.Exit(1)
	}
}
