// Command gapbench regenerates the evaluation tables of the LAGraph paper
// (Tables III and IV) on scaled-down synthetic analogues of the GAP
// benchmark graphs.
//
// Usage:
//
//	gapbench -table3 -scale 14 -trials 3
//	gapbench -table4 -scale 14
//	gapbench -table3 -algos BFS,PR -graphs Kron,Road
//	gapbench -table3 -algos lcc,tc.advanced -graphs Kron    # catalog-only kernels
//	gapbench -table3 -json BENCH_2026-08-07.json            # recorded perf point
//	gapbench -list-algorithms
//
// With -json the run additionally writes a machine-readable perf record
// (schema lagraph-bench/v2): per-cell seconds and GTEPS, each SS cell's
// kernel introspection report (iterations, convergence, work counters),
// the graph sizes, and the git revision — one point of the repo's
// recorded performance trajectory, produced in CI on every run and
// compared against the committed baseline by cmd/benchdiff.
//
// Table III prints the run time (seconds) of the GAP-style baselines
// ("GAP") and the LAGraph-on-GraphBLAS implementations ("SS", following
// the paper's label for LAGraph+SS:GrB) for six kernels on five graphs,
// plus the SS/GAP ratio so the "shape" — who wins where — is explicit.
//
// The SS side dispatches through the algorithm catalog (internal/algo),
// so -algos accepts any registered algorithm name — kernels without a GAP
// baseline (lcc, the advanced variants, anything registered later) get an
// SS row and no ratio.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"lagraph/internal/algo"
	"lagraph/internal/bench"
	"lagraph/internal/lagraph"
)

// benchRecord is the -json perf record, schema lagraph-bench/v2 (v1 plus
// per-cell run reports; benchdiff still reads v1). Each cell is one
// (algorithm, implementation, graph) timing with its derived GTEPS;
// successive records — one per CI run — form the repo's recorded
// performance trajectory.
type benchRecord struct {
	Schema string `json:"schema"` // "lagraph-bench/v2"
	Date   string `json:"date"`   // RFC 3339, UTC
	// GitRev deliberately has no omitempty: benchdiff labels both sides of
	// a comparison by this field, so it is always present ("unknown" when
	// neither the -git-rev flag nor a VCS stamp supplies one).
	GitRev     string        `json:"git_rev"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Scale      int           `json:"scale"`
	EdgeFactor int           `json:"edge_factor"`
	Trials     int           `json:"trials"`
	Seed       uint64        `json:"seed"`
	Graphs     []graphRecord `json:"graphs"`
	Cells      []cellRecord  `json:"cells"`
}

// graphRecord is one benchmark graph's size, mirroring Table IV.
type graphRecord struct {
	Name    string `json:"name"`
	Nodes   int    `json:"nodes"`
	Entries int    `json:"entries"` // nonzeros in A
	Kind    string `json:"kind"`    // directed | undirected
}

// cellRecord is one Table III cell. GTEPS is entries/seconds/1e9 — the
// GAP convention of edges traversed per second, using the adjacency
// entry count as the work proxy so the figure is comparable across runs
// of the same graph. Skipped cells carry the reason instead of a time.
type cellRecord struct {
	Algorithm string  `json:"algorithm"`
	Impl      string  `json:"impl"` // GAP | SS
	Graph     string  `json:"graph"`
	Trials    int     `json:"trials,omitempty"`
	Seconds   float64 `json:"seconds,omitempty"`
	GTEPS     float64 `json:"gteps,omitempty"`
	Skipped   string  `json:"skipped,omitempty"`
	// Report is the SS cell's kernel introspection record (v2 addition):
	// the first trial's iteration trace, convergence status and work
	// counters. GAP baseline cells have none.
	Report *algo.RunReport `json:"report,omitempty"`
}

// gitRevision labels the record's side of a benchdiff comparison: the
// -git-rev flag wins (CI passes $GITHUB_SHA), then the VCS revision
// stamped into the binary ("-dirty" appended for modified checkouts),
// then the literal "unknown" — never an empty field, so a benchdiff of
// records from stampless builds (`go run`, a source tarball outside any
// checkout) can still label both sides.
func gitRevision(flagRev string) string {
	if flagRev != "" {
		return flagRev
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		rev, dirty := "", false
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision":
				rev = kv.Value
			case "vcs.modified":
				dirty = kv.Value == "true"
			}
		}
		if rev != "" {
			if dirty {
				rev += "-dirty"
			}
			return rev
		}
	}
	return "unknown"
}

func main() {
	var (
		table3   = flag.Bool("table3", false, "regenerate paper Table III (run times)")
		table4   = flag.Bool("table4", false, "regenerate paper Table IV (graph statistics)")
		listAlgs = flag.Bool("list-algorithms", false, "print the algorithm catalog and exit")
		scale    = flag.Int("scale", 12, "log2 of the vertex count for synthetic classes")
		ef       = flag.Int("ef", 8, "edges per vertex before deduplication")
		trials   = flag.Int("trials", 3, "trials per source-based kernel")
		seed     = flag.Uint64("seed", 1, "generator seed")
		algos    = flag.String("algos", strings.Join(bench.AlgNames, ","), "comma-separated kernels (Table III labels or catalog names)")
		graphs   = flag.String("graphs", strings.Join(bench.GraphNames, ","), "comma-separated graph classes")
		jsonOut  = flag.String("json", "", "also write a lagraph-bench/v2 perf record to this file")
		gitRev   = flag.String("git-rev", "", "git revision recorded in the -json output (default: the binary's VCS stamp)")
	)
	flag.Parse()
	if *listAlgs {
		printCatalog()
		return
	}
	if !*table3 && !*table4 {
		flag.Usage()
		os.Exit(2)
	}

	graphList := splitList(*graphs)
	algoList := splitList(*algos)
	for _, alg := range algoList {
		if _, err := algo.Default().Lookup(bench.CatalogName(alg)); err != nil {
			fatal("%v", err)
		}
	}

	fmt.Printf("# lagraph-go GAP benchmark harness\n")
	fmt.Printf("# scale=%d edgefactor=%d trials=%d seed=%d GOMAXPROCS=%d\n\n",
		*scale, *ef, *trials, *seed, runtime.GOMAXPROCS(0))

	workloads := map[string]*bench.Workload{}
	for _, gName := range graphList {
		w, err := bench.Load(gName, *scale, *ef, *seed)
		if err != nil {
			fatal("loading %s: %v", gName, err)
		}
		workloads[gName] = w
	}

	if *table4 {
		printTable4(graphList, workloads)
	}
	var cells []cellRecord
	if *table3 {
		cells = printTable3(graphList, algoList, workloads, *trials)
	}
	if *jsonOut != "" {
		rec := benchRecord{
			Schema:     "lagraph-bench/v2",
			Date:       time.Now().UTC().Format(time.RFC3339),
			GitRev:     gitRevision(*gitRev),
			GoVersion:  runtime.Version(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Scale:      *scale,
			EdgeFactor: *ef,
			Trials:     *trials,
			Seed:       *seed,
			Cells:      cells,
		}
		for _, gName := range graphList {
			w := workloads[gName]
			kind := "undirected"
			if w.Edges.Directed {
				kind = "directed"
			}
			rec.Graphs = append(rec.Graphs, graphRecord{
				Name: gName, Nodes: w.Edges.N, Entries: w.LG.A.NVals(), Kind: kind,
			})
		}
		b, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			fatal("encoding -json record: %v", err)
		}
		if err := os.WriteFile(*jsonOut, append(b, '\n'), 0o644); err != nil {
			fatal("writing %s: %v", *jsonOut, err)
		}
		fmt.Printf("wrote perf record to %s\n", *jsonOut)
	}
}

// printCatalog renders the self-describing catalog: every registered
// algorithm with its tier, parameter schema and defaults — the same data
// GET /algorithms serves and the README reference is generated from.
func printCatalog() {
	fmt.Println("# algorithm catalog (internal/algo)")
	for _, in := range algo.Default().List() {
		kind := ""
		if in.Undirected {
			kind = "  [undirected only]"
		}
		fmt.Printf("\n%-14s %s%s\n", in.Name, in.Tier, kind)
		if len(in.Properties) > 0 {
			fmt.Printf("    properties: %s\n", strings.Join(in.Properties, ", "))
		}
		for _, p := range in.Params {
			def := "-"
			if p.Default != nil {
				def = fmt.Sprintf("%v", p.Default)
			}
			fmt.Printf("    %-10s %-7s default=%-8s %s\n", p.Name, p.Type, def, p.Doc)
		}
	}
}

func printTable4(graphList []string, workloads map[string]*bench.Workload) {
	fmt.Println("TABLE IV: Benchmark matrices")
	fmt.Printf("%-10s %12s %14s %12s\n", "graph", "nodes", "entries in A", "graph kind")
	for _, gName := range graphList {
		w := workloads[gName]
		kind := "undirected"
		if w.Edges.Directed {
			kind = "directed"
		}
		fmt.Printf("%-10s %12d %14d %12s\n", gName, w.Edges.N, w.LG.A.NVals(), kind)
	}
	fmt.Println()
}

// cellWorkload symmetrises directed workloads for undirected-only
// kernels (TC and friends), exactly as the real GAP runner does.
func cellWorkload(alg string, w *bench.Workload) *bench.Workload {
	if d, ok := algo.Default().Get(bench.CatalogName(alg)); ok && d.Undirected {
		return bench.TCWorkload(w)
	}
	return w
}

// cellTrials reduces whole-graph kernels (no source parameter) to one
// trial, as the GAP runner times them once.
func cellTrials(alg string, trials int) int {
	d, ok := algo.Default().Get(bench.CatalogName(alg))
	if !ok {
		return trials
	}
	for _, p := range d.Params {
		if p.Name == "source" || p.Name == "sources" {
			return trials
		}
	}
	return 1
}

// printTable3 renders the run-time table and returns the cells for the
// -json perf record.
func printTable3(graphList, algoList []string, workloads map[string]*bench.Workload, trials int) []cellRecord {
	var cells []cellRecord
	fmt.Println("TABLE III: Run time of GAP and LAGraph+GrB (seconds)")
	fmt.Printf("%-12s", "package")
	for _, gName := range graphList {
		fmt.Printf(" %10s", gName)
	}
	fmt.Println()
	ratios := map[string][2]map[string]float64{}
	for _, alg := range algoList {
		perImpl := [2]map[string]float64{{}, {}}
		impls := []string{"GAP", "SS"}
		if !bench.HasGAP(alg) {
			impls = []string{"SS"}
		}
		for _, impl := range impls {
			i := 0
			if impl == "SS" {
				i = 1
			}
			fmt.Printf("%-12s", alg+" : "+impl)
			for _, gName := range graphList {
				w := cellWorkload(alg, workloads[gName])
				nTrials := cellTrials(alg, trials)
				res, err := bench.RunCell(alg, impl, w, nTrials)
				if err != nil && !lagraph.IsWarning(err) {
					// A kernel/graph incompatibility (cc.advanced on an
					// asymmetric directed class, say) skips the cell with a
					// warning instead of aborting the whole table.
					fmt.Fprintf(os.Stderr, "gapbench: skipping %s/%s on %s: %v\n", alg, impl, gName, err)
					fmt.Printf(" %10s", "-")
					cells = append(cells, cellRecord{
						Algorithm: alg, Impl: impl, Graph: gName, Skipped: err.Error(),
					})
					continue
				}
				perImpl[i][gName] = res.Seconds
				fmt.Printf(" %10.3f", res.Seconds)
				cell := cellRecord{
					Algorithm: alg, Impl: impl, Graph: gName,
					Trials: nTrials, Seconds: res.Seconds,
					Report: res.Report,
				}
				if res.Seconds > 0 {
					cell.GTEPS = float64(w.LG.A.NVals()) / res.Seconds / 1e9
				}
				cells = append(cells, cell)
			}
			fmt.Println()
		}
		ratios[alg] = perImpl
	}
	fmt.Println()
	fmt.Println("SS / GAP ratio (>1: GAP faster, <1: LAGraph faster)")
	fmt.Printf("%-12s", "")
	for _, gName := range graphList {
		fmt.Printf(" %10s", gName)
	}
	fmt.Println()
	for _, alg := range algoList {
		fmt.Printf("%-12s", alg)
		for _, gName := range graphList {
			gapT, gok := ratios[alg][0][gName]
			ssT, sok := ratios[alg][1][gName]
			if gok && sok && gapT > 0 {
				fmt.Printf(" %10.2f", ssT/gapT)
			} else {
				fmt.Printf(" %10s", "-")
			}
		}
		fmt.Println()
	}
	return cells
}

func splitList(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gapbench: "+format+"\n", args...)
	os.Exit(1)
}
