// Command gapbench regenerates the evaluation tables of the LAGraph paper
// (Tables III and IV) on scaled-down synthetic analogues of the GAP
// benchmark graphs.
//
// Usage:
//
//	gapbench -table3 -scale 14 -trials 3
//	gapbench -table4 -scale 14
//	gapbench -table3 -algos BFS,PR -graphs Kron,Road
//	gapbench -table3 -algos lcc,tc.advanced -graphs Kron    # catalog-only kernels
//	gapbench -list-algorithms
//
// Table III prints the run time (seconds) of the GAP-style baselines
// ("GAP") and the LAGraph-on-GraphBLAS implementations ("SS", following
// the paper's label for LAGraph+SS:GrB) for six kernels on five graphs,
// plus the SS/GAP ratio so the "shape" — who wins where — is explicit.
//
// The SS side dispatches through the algorithm catalog (internal/algo),
// so -algos accepts any registered algorithm name — kernels without a GAP
// baseline (lcc, the advanced variants, anything registered later) get an
// SS row and no ratio.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"lagraph/internal/algo"
	"lagraph/internal/bench"
	"lagraph/internal/lagraph"
)

func main() {
	var (
		table3   = flag.Bool("table3", false, "regenerate paper Table III (run times)")
		table4   = flag.Bool("table4", false, "regenerate paper Table IV (graph statistics)")
		listAlgs = flag.Bool("list-algorithms", false, "print the algorithm catalog and exit")
		scale    = flag.Int("scale", 12, "log2 of the vertex count for synthetic classes")
		ef       = flag.Int("ef", 8, "edges per vertex before deduplication")
		trials   = flag.Int("trials", 3, "trials per source-based kernel")
		seed     = flag.Uint64("seed", 1, "generator seed")
		algos    = flag.String("algos", strings.Join(bench.AlgNames, ","), "comma-separated kernels (Table III labels or catalog names)")
		graphs   = flag.String("graphs", strings.Join(bench.GraphNames, ","), "comma-separated graph classes")
	)
	flag.Parse()
	if *listAlgs {
		printCatalog()
		return
	}
	if !*table3 && !*table4 {
		flag.Usage()
		os.Exit(2)
	}

	graphList := splitList(*graphs)
	algoList := splitList(*algos)
	for _, alg := range algoList {
		if _, err := algo.Default().Lookup(bench.CatalogName(alg)); err != nil {
			fatal("%v", err)
		}
	}

	fmt.Printf("# lagraph-go GAP benchmark harness\n")
	fmt.Printf("# scale=%d edgefactor=%d trials=%d seed=%d GOMAXPROCS=%d\n\n",
		*scale, *ef, *trials, *seed, runtime.GOMAXPROCS(0))

	workloads := map[string]*bench.Workload{}
	for _, gName := range graphList {
		w, err := bench.Load(gName, *scale, *ef, *seed)
		if err != nil {
			fatal("loading %s: %v", gName, err)
		}
		workloads[gName] = w
	}

	if *table4 {
		printTable4(graphList, workloads)
	}
	if *table3 {
		printTable3(graphList, algoList, workloads, *trials)
	}
}

// printCatalog renders the self-describing catalog: every registered
// algorithm with its tier, parameter schema and defaults — the same data
// GET /algorithms serves and the README reference is generated from.
func printCatalog() {
	fmt.Println("# algorithm catalog (internal/algo)")
	for _, in := range algo.Default().List() {
		kind := ""
		if in.Undirected {
			kind = "  [undirected only]"
		}
		fmt.Printf("\n%-14s %s%s\n", in.Name, in.Tier, kind)
		if len(in.Properties) > 0 {
			fmt.Printf("    properties: %s\n", strings.Join(in.Properties, ", "))
		}
		for _, p := range in.Params {
			def := "-"
			if p.Default != nil {
				def = fmt.Sprintf("%v", p.Default)
			}
			fmt.Printf("    %-10s %-7s default=%-8s %s\n", p.Name, p.Type, def, p.Doc)
		}
	}
}

func printTable4(graphList []string, workloads map[string]*bench.Workload) {
	fmt.Println("TABLE IV: Benchmark matrices")
	fmt.Printf("%-10s %12s %14s %12s\n", "graph", "nodes", "entries in A", "graph kind")
	for _, gName := range graphList {
		w := workloads[gName]
		kind := "undirected"
		if w.Edges.Directed {
			kind = "directed"
		}
		fmt.Printf("%-10s %12d %14d %12s\n", gName, w.Edges.N, w.LG.A.NVals(), kind)
	}
	fmt.Println()
}

// cellWorkload symmetrises directed workloads for undirected-only
// kernels (TC and friends), exactly as the real GAP runner does.
func cellWorkload(alg string, w *bench.Workload) *bench.Workload {
	if d, ok := algo.Default().Get(bench.CatalogName(alg)); ok && d.Undirected {
		return bench.TCWorkload(w)
	}
	return w
}

// cellTrials reduces whole-graph kernels (no source parameter) to one
// trial, as the GAP runner times them once.
func cellTrials(alg string, trials int) int {
	d, ok := algo.Default().Get(bench.CatalogName(alg))
	if !ok {
		return trials
	}
	for _, p := range d.Params {
		if p.Name == "source" || p.Name == "sources" {
			return trials
		}
	}
	return 1
}

func printTable3(graphList, algoList []string, workloads map[string]*bench.Workload, trials int) {
	fmt.Println("TABLE III: Run time of GAP and LAGraph+GrB (seconds)")
	fmt.Printf("%-12s", "package")
	for _, gName := range graphList {
		fmt.Printf(" %10s", gName)
	}
	fmt.Println()
	ratios := map[string][2]map[string]float64{}
	for _, alg := range algoList {
		perImpl := [2]map[string]float64{{}, {}}
		impls := []string{"GAP", "SS"}
		if !bench.HasGAP(alg) {
			impls = []string{"SS"}
		}
		for _, impl := range impls {
			i := 0
			if impl == "SS" {
				i = 1
			}
			fmt.Printf("%-12s", alg+" : "+impl)
			for _, gName := range graphList {
				w := cellWorkload(alg, workloads[gName])
				res, err := bench.RunCell(alg, impl, w, cellTrials(alg, trials))
				if err != nil && !lagraph.IsWarning(err) {
					// A kernel/graph incompatibility (cc.advanced on an
					// asymmetric directed class, say) skips the cell with a
					// warning instead of aborting the whole table.
					fmt.Fprintf(os.Stderr, "gapbench: skipping %s/%s on %s: %v\n", alg, impl, gName, err)
					fmt.Printf(" %10s", "-")
					continue
				}
				perImpl[i][gName] = res.Seconds
				fmt.Printf(" %10.3f", res.Seconds)
			}
			fmt.Println()
		}
		ratios[alg] = perImpl
	}
	fmt.Println()
	fmt.Println("SS / GAP ratio (>1: GAP faster, <1: LAGraph faster)")
	fmt.Printf("%-12s", "")
	for _, gName := range graphList {
		fmt.Printf(" %10s", gName)
	}
	fmt.Println()
	for _, alg := range algoList {
		fmt.Printf("%-12s", alg)
		for _, gName := range graphList {
			gapT, gok := ratios[alg][0][gName]
			ssT, sok := ratios[alg][1][gName]
			if gok && sok && gapT > 0 {
				fmt.Printf(" %10.2f", ssT/gapT)
			} else {
				fmt.Printf(" %10s", "-")
			}
		}
		fmt.Println()
	}
}

func splitList(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gapbench: "+format+"\n", args...)
	os.Exit(1)
}
