// Command gapbench regenerates the evaluation tables of the LAGraph paper
// (Tables III and IV) on scaled-down synthetic analogues of the GAP
// benchmark graphs.
//
// Usage:
//
//	gapbench -table3 -scale 14 -trials 3
//	gapbench -table4 -scale 14
//	gapbench -table3 -algos BFS,PR -graphs Kron,Road
//
// Table III prints the run time (seconds) of the GAP-style baselines
// ("GAP") and the LAGraph-on-GraphBLAS implementations ("SS", following
// the paper's label for LAGraph+SS:GrB) for six kernels on five graphs,
// plus the SS/GAP ratio so the "shape" — who wins where — is explicit.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"lagraph/internal/bench"
	"lagraph/internal/lagraph"
)

func main() {
	var (
		table3 = flag.Bool("table3", false, "regenerate paper Table III (run times)")
		table4 = flag.Bool("table4", false, "regenerate paper Table IV (graph statistics)")
		scale  = flag.Int("scale", 12, "log2 of the vertex count for synthetic classes")
		ef     = flag.Int("ef", 8, "edges per vertex before deduplication")
		trials = flag.Int("trials", 3, "trials per source-based kernel")
		seed   = flag.Uint64("seed", 1, "generator seed")
		algos  = flag.String("algos", strings.Join(bench.AlgNames, ","), "comma-separated kernels")
		graphs = flag.String("graphs", strings.Join(bench.GraphNames, ","), "comma-separated graph classes")
	)
	flag.Parse()
	if !*table3 && !*table4 {
		flag.Usage()
		os.Exit(2)
	}

	graphList := splitList(*graphs)
	algoList := splitList(*algos)

	fmt.Printf("# lagraph-go GAP benchmark harness\n")
	fmt.Printf("# scale=%d edgefactor=%d trials=%d seed=%d GOMAXPROCS=%d\n\n",
		*scale, *ef, *trials, *seed, runtime.GOMAXPROCS(0))

	workloads := map[string]*bench.Workload{}
	for _, gName := range graphList {
		w, err := bench.Load(gName, *scale, *ef, *seed)
		if err != nil {
			fatal("loading %s: %v", gName, err)
		}
		workloads[gName] = w
	}

	if *table4 {
		printTable4(graphList, workloads)
	}
	if *table3 {
		printTable3(graphList, algoList, workloads, *trials)
	}
}

func printTable4(graphList []string, workloads map[string]*bench.Workload) {
	fmt.Println("TABLE IV: Benchmark matrices")
	fmt.Printf("%-10s %12s %14s %12s\n", "graph", "nodes", "entries in A", "graph kind")
	for _, gName := range graphList {
		w := workloads[gName]
		kind := "undirected"
		if w.Edges.Directed {
			kind = "directed"
		}
		fmt.Printf("%-10s %12d %14d %12s\n", gName, w.Edges.N, w.LG.A.NVals(), kind)
	}
	fmt.Println()
}

func printTable3(graphList, algoList []string, workloads map[string]*bench.Workload, trials int) {
	fmt.Println("TABLE III: Run time of GAP and LAGraph+GrB (seconds)")
	fmt.Printf("%-12s", "package")
	for _, gName := range graphList {
		fmt.Printf(" %10s", gName)
	}
	fmt.Println()
	type row struct {
		label string
		vals  map[string]float64
	}
	ratios := map[string][2]map[string]float64{}
	for _, alg := range algoList {
		perImpl := [2]map[string]float64{{}, {}}
		for i, impl := range []string{"GAP", "SS"} {
			fmt.Printf("%-12s", alg+" : "+impl)
			for _, gName := range graphList {
				w := workloads[gName]
				if alg == "TC" {
					w = bench.TCWorkload(w)
				}
				t := trials
				if alg == "TC" || alg == "CC" || alg == "PR" {
					t = 1 // whole-graph kernels: GAP times these once
				}
				res, err := bench.RunCell(alg, impl, w, t)
				if err != nil && !lagraph.IsWarning(err) {
					fatal("%s/%s on %s: %v", alg, impl, gName, err)
				}
				perImpl[i][gName] = res.Seconds
				fmt.Printf(" %10.3f", res.Seconds)
			}
			fmt.Println()
		}
		ratios[alg] = perImpl
	}
	fmt.Println()
	fmt.Println("SS / GAP ratio (>1: GAP faster, <1: LAGraph faster)")
	fmt.Printf("%-12s", "")
	for _, gName := range graphList {
		fmt.Printf(" %10s", gName)
	}
	fmt.Println()
	for _, alg := range algoList {
		fmt.Printf("%-12s", alg)
		for _, gName := range graphList {
			gapT := ratios[alg][0][gName]
			ssT := ratios[alg][1][gName]
			if gapT > 0 {
				fmt.Printf(" %10.2f", ssT/gapT)
			} else {
				fmt.Printf(" %10s", "-")
			}
		}
		fmt.Println()
	}
}

func splitList(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gapbench: "+format+"\n", args...)
	os.Exit(1)
}
