// Command graphgen generates one of the benchmark graph classes and saves
// it as a Matrix Market or binary file, so experiments can run on frozen
// inputs.
//
// Usage:
//
//	graphgen -class Kron -scale 14 -o kron14.mtx
//	graphgen -class Road -scale 14 -weights -format bin -o road.grb
package main

import (
	"flag"
	"fmt"
	"os"

	"lagraph/internal/gen"
	"lagraph/internal/grb"
	"lagraph/internal/lagraph"
)

func main() {
	var (
		class   = flag.String("class", "Kron", "graph class: Kron, Urand, Twitter, Web, Road")
		scale   = flag.Int("scale", 12, "log2 vertex count (Road: grid dim 2^(scale/2))")
		ef      = flag.Int("ef", 8, "edges per vertex before dedup")
		seed    = flag.Uint64("seed", 1, "generator seed")
		weights = flag.Bool("weights", false, "attach uniform [1,255] weights")
		format  = flag.String("format", "mm", "output format: mm or bin")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var e *gen.EdgeList
	switch *class {
	case "Kron":
		e = gen.Kron(*scale, *ef, *seed)
	case "Urand":
		e = gen.Urand(*scale, *ef, *seed)
	case "Twitter":
		e = gen.Twitter(*scale, *ef, *seed)
	case "Web":
		e = gen.Web(*scale, *ef, *seed)
	case "Road":
		e = gen.Road(1<<(*scale/2), *seed)
	default:
		fatal("unknown class %q", *class)
	}
	if *weights {
		e.AddUniformWeights(*seed+17, 1, 255)
	}
	ptr, idx, vals := e.CSR()
	A, err := grb.ImportCSR(e.N, e.N, ptr, idx, vals, false)
	if err != nil {
		fatal("building matrix: %v", err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal("creating %s: %v", *out, err)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "mm":
		err = lagraph.MMWrite(w, A)
	case "bin":
		err = lagraph.BinWrite(w, A)
	default:
		fatal("unknown format %q", *format)
	}
	if err != nil {
		fatal("writing: %v", err)
	}
	fmt.Fprintf(os.Stderr, "%s: %d nodes, %d entries, directed=%v\n",
		*class, e.N, A.NVals(), e.Directed)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "graphgen: "+format+"\n", args...)
	os.Exit(1)
}
