// lagraphd is the LAGraph analytics daemon: it holds named graphs
// resident in a registry and answers algorithm requests over HTTP/JSON,
// reusing each graph's cached properties (transpose, degrees) across
// requests the way the paper's LAGraph_Graph amortizes them across calls.
//
// Algorithm execution — synchronous and asynchronous — runs on a jobs
// engine: a worker pool of cancellable jobs with single-flight dedup and
// a result cache keyed by each graph's registry version.
//
// With -data-dir the daemon is durable: loaded graphs are checkpointed,
// mutation batches are write-ahead-logged before they become visible,
// and a restart recovers every graph at the version it last published
// (see internal/store).
//
// Observability: GET /metrics serves every subsystem's counters — plus
// Go-runtime telemetry (heap, GC pauses, goroutines, scheduling latency)
// — in the Prometheus text format, GET /debug/traces serves recent
// request traces (ids propagate via X-Trace-Id), the access and
// slow-query logs are structured slog records (-log-level, -log-format,
// -slow-query), and -pprof-addr exposes net/http/pprof on its own
// listener. A built-in flight recorder (-incident-window, default 30s)
// continuously rings recent logs, traces and metric snapshots; anomalies
// — a slow query, a failed job, a saturated queue, a WAL fsync stall
// (-fsync-alert), a heap high-watermark crossing (-heap-alert-bytes) —
// freeze the ring into incidents served by GET /debug/incidents, and
// GET /debug/bundle ships everything (incidents, current scrape, build
// info, recent traces, component health, a goroutine dump) as one
// tar.gz. GET /healthz reports per-component readiness: store
// writability, job-queue headroom, compactor liveness.
//
// Quickstart:
//
//	lagraphd -addr :8080 -data-dir /var/lib/lagraphd &
//	curl -X POST localhost:8080/graphs -H 'Content-Type: application/json' \
//	     -d '{"name":"kron","class":"kron","scale":10,"edge_factor":8}'
//	curl -X POST localhost:8080/graphs/kron/algorithms/pagerank -d '{}'
//	curl -X POST localhost:8080/graphs/kron/jobs \
//	     -d '{"algorithm":"bc","params":{"sources":[0,1,2,3]}}'
//	curl -X POST localhost:8080/graphs/kron/edges \
//	     -d '{"ops":[{"op":"upsert","src":0,"dst":5,"weight":2}]}'
//	curl localhost:8080/jobs
//	curl localhost:8080/stats
//	curl localhost:8080/metrics
//	curl localhost:8080/debug/incidents
//	curl localhost:8080/debug/bundle | tar tz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lagraph/internal/cluster"
	"lagraph/internal/obs"
	"lagraph/internal/parallel"
	"lagraph/internal/registry"
	"lagraph/internal/server"
	"lagraph/internal/store"
	"lagraph/internal/tenant"
)

// newLogger builds the daemon's slog logger from the -log-level and
// -log-format flags.
func newLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "", "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (text|json)", format)
	}
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		maxBytes    = flag.Int64("max-bytes", 1<<30, "registry memory budget in bytes (0 = unlimited)")
		maxInflight = flag.Int("max-inflight", 0, "max concurrently served requests (0 = 2x worker threads)")
		maxUpload   = flag.Int64("max-upload-bytes", 64<<20, "max POST /graphs body size")
		maxParams   = flag.Int64("max-params-bytes", 1<<20, "max algorithm-parameter and job-submission body size")
		threads     = flag.Int("threads", 0, "kernel worker threads (0 = GOMAXPROCS)")
		gracePeriod = flag.Duration("grace", 10*time.Second, "graceful-shutdown drain period")

		workers    = flag.Int("workers", 0, "jobs-engine workers: concurrently executing algorithms (0 = kernel worker threads)")
		queueDepth = flag.Int("queue-depth", 0, "max jobs waiting for a worker (0 = 64)")
		resultTTL  = flag.Duration("result-ttl", 0, "how long completed results stay cached (0 = 5m)")
		maxResults = flag.Int("max-cached-results", 0, "result-cache entry bound (0 = 256)")
		jobTimeout = flag.Duration("job-timeout", 0, "default per-job deadline when the submission sets none (0 = none)")

		compactThreshold = flag.Int("compact-threshold", 0, "delta-log ops per graph before background compaction (0 = 4096)")
		compactRatio     = flag.Float64("compact-ratio", 0, "delta-log/graph-size ratio that triggers compaction (0 = 0.25)")
		maxBatchOps      = flag.Int("max-batch-ops", 0, "max edge operations per mutation batch (0 = 65536)")

		dataDir            = flag.String("data-dir", "", "durable store directory: persist graphs + mutation WAL, recover on boot (empty = memory only)")
		fsync              = flag.Bool("fsync", true, "fsync WAL appends and checkpoint writes (with -data-dir)")
		checkpointInterval = flag.Duration("checkpoint-interval", 5*time.Minute, "periodic WAL-bounding checkpoint cadence (0 disables; with -data-dir)")

		logLevel      = flag.String("log-level", "info", "log verbosity: debug|info|warn|error")
		logFormat     = flag.String("log-format", "text", "log encoding: text|json")
		slowQuery     = flag.Duration("slow-query", 0, "log requests at least this slow with their span breakdown, and capture a slow_query incident (0 disables)")
		traceCapacity = flag.Int("trace-capacity", 0, "finished-trace ring size served by /debug/traces (0 = 256)")
		pprofAddr     = flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty disables)")

		incidentWindow   = flag.Duration("incident-window", 30*time.Second, "flight-recorder lookback per incident and per-trigger debounce (0 disables the recorder)")
		incidentCapacity = flag.Int("incident-capacity", 0, "retained-incident bound served by /debug/incidents (0 = 16)")
		fsyncAlert       = flag.Duration("fsync-alert", 0, "capture a wal_fsync_stall incident when one WAL append+fsync is at least this slow (0 disables; with -data-dir)")
		heapAlertBytes   = flag.Int64("heap-alert-bytes", 0, "capture a heap_watermark incident when the heap high watermark crosses this many bytes (0 disables)")

		role        = flag.String("role", "", "cluster role: leader|follower (empty = single-node, no clustering)")
		advertise   = flag.String("advertise", "", "this node's advertised host:port, how peers reach it (required with -role)")
		leaderAddr  = flag.String("leader", "", "leader's host:port (required on followers)")
		peers       = flag.String("peers", "", "comma-separated static cluster membership (host:port each); self and leader are always included")
		replicaPoll = flag.Duration("replica-poll", 250*time.Millisecond, "follower replication poll interval")

		authTokens       = flag.String("auth-tokens", "", "tenant token file (JSON); enables multi-tenant mode with bearer auth, per-tenant namespaces and quotas (empty = single-tenant, no auth)")
		tenantMaxGraphs  = flag.Int("tenant-max-graphs", 0, "default per-tenant resident-graph quota for tenants without their own (0 = unlimited; with -auth-tokens)")
		tenantMaxBytes   = flag.Int64("tenant-max-bytes", 0, "default per-tenant resident-byte quota (0 = unlimited; with -auth-tokens)")
		tenantMaxRunning = flag.Int("tenant-max-running", 0, "default per-tenant concurrently running job bound (0 = unlimited; with -auth-tokens)")
		tenantMaxQueued  = flag.Int("tenant-max-queued", 0, "default per-tenant queued-job bound (0 = unlimited; with -auth-tokens)")
	)
	flag.Parse()

	logger, err := newLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lagraphd: %v\n", err)
		os.Exit(1)
	}
	slog.SetDefault(logger)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	if *threads > 0 {
		parallel.SetMaxThreads(*threads)
	}

	var tenants *tenant.Config
	if *authTokens != "" {
		var err error
		tenants, err = tenant.Load(*authTokens)
		if err != nil {
			fatal("loading tenant tokens", "file", *authTokens, "error", err)
		}
	}

	clusterCfg := cluster.Config{
		Role:   cluster.Role(*role),
		Self:   *advertise,
		Leader: *leaderAddr,
		Peers:  cluster.ParsePeers(*peers),
		Poll:   *replicaPoll,
	}
	if err := clusterCfg.Validate(); err != nil {
		fatal("cluster config", "error", err)
	}
	if clusterCfg.Role == cluster.RoleLeader && *dataDir == "" {
		fatal("cluster config", "error", "a leader needs -data-dir: the WAL is the replication log")
	}

	var st *store.Store
	if *dataDir != "" {
		var err error
		st, err = store.Open(store.Options{
			Dir:                *dataDir,
			Fsync:              *fsync,
			CheckpointInterval: *checkpointInterval,
		})
		if err != nil {
			fatal("opening data dir", "dir", *dataDir, "error", err)
		}
	}

	reg := registry.New(*maxBytes)
	srv := server.New(reg, server.Options{
		MaxInFlight:      *maxInflight,
		MaxUploadBytes:   *maxUpload,
		MaxParamsBytes:   *maxParams,
		Workers:          *workers,
		QueueDepth:       *queueDepth,
		ResultTTL:        *resultTTL,
		MaxCachedResults: *maxResults,
		JobTimeout:       *jobTimeout,
		CompactThreshold: *compactThreshold,
		CompactRatio:     *compactRatio,
		MaxBatchOps:      *maxBatchOps,
		Store:            st,
		Obs:              obs.NewRegistry(),
		Logger:           logger,
		SlowThreshold:    *slowQuery,
		TraceCapacity:    *traceCapacity,
		IncidentWindow:   *incidentWindow,
		IncidentCapacity: *incidentCapacity,
		FsyncAlert:       *fsyncAlert,
		HeapAlertBytes:   *heapAlertBytes,
		Tenants:          tenants,
		TenantDefaults: tenant.Defaults{
			MaxGraphs:        *tenantMaxGraphs,
			MaxResidentBytes: *tenantMaxBytes,
			MaxRunningJobs:   *tenantMaxRunning,
			MaxQueuedJobs:    *tenantMaxQueued,
		},
		Cluster: clusterCfg,
	})
	if clusterCfg.Role != cluster.RoleNone {
		logger.Info("cluster mode", "role", string(clusterCfg.Role),
			"self", clusterCfg.Self, "leader", clusterCfg.Leader, "peers", clusterCfg.Peers)
	}
	if tenants != nil {
		logger.Info("multi-tenant mode", "tenants", len(tenants.Tenants), "file", *authTokens)
	}
	if st != nil {
		stats := st.StatsSnapshot()
		if rec := stats.Recovery; rec != nil {
			logger.Info("recovered durable state",
				"graphs", rec.GraphsRecovered, "wal_batches", rec.BatchesReplayed,
				"ops", rec.OpsReplayed, "dir", *dataDir, "seconds", rec.Seconds)
			for _, f := range rec.Failed {
				logger.Warn("recovery skipped graph", "detail", f)
			}
		}
		for _, d := range stats.SkippedDirs {
			logger.Warn("data dir entry not served", "detail", d)
		}
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	if *pprofAddr != "" {
		// pprof gets its own mux on its own listener so profiling stays
		// off the API surface (and off any port the API is exposed on).
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		psrv := &http.Server{Addr: *pprofAddr, Handler: pmux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := psrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof listener failed", "error", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Info("lagraphd listening",
			"addr", *addr, "budget_bytes", *maxBytes, "workers", parallel.MaxThreads())
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal("listener failed", "error", err)
		}
	case <-ctx.Done():
		logger.Info("shutting down", "grace", gracePeriod.String())
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *gracePeriod)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			logger.Error("forced shutdown", "error", err)
			_ = httpSrv.Close()
		}
		srv.Close() // cancels running jobs, drains the worker pool
		reg.Close()
		logger.Info("stopped")
	}
}
