// lagraphd is the LAGraph analytics daemon: it holds named graphs
// resident in a registry and answers algorithm requests over HTTP/JSON,
// reusing each graph's cached properties (transpose, degrees) across
// requests the way the paper's LAGraph_Graph amortizes them across calls.
//
// Quickstart:
//
//	lagraphd -addr :8080 &
//	curl -X POST localhost:8080/graphs -H 'Content-Type: application/json' \
//	     -d '{"name":"kron","class":"kron","scale":10,"edge_factor":8}'
//	curl -X POST localhost:8080/graphs/kron/algorithms/pagerank -d '{}'
//	curl localhost:8080/stats
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lagraph/internal/parallel"
	"lagraph/internal/registry"
	"lagraph/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		maxBytes    = flag.Int64("max-bytes", 1<<30, "registry memory budget in bytes (0 = unlimited)")
		maxInflight = flag.Int("max-inflight", 0, "max concurrently served requests (0 = 2x worker threads)")
		maxUpload   = flag.Int64("max-upload-bytes", 64<<20, "max POST /graphs body size")
		threads     = flag.Int("threads", 0, "kernel worker threads (0 = GOMAXPROCS)")
		gracePeriod = flag.Duration("grace", 10*time.Second, "graceful-shutdown drain period")
	)
	flag.Parse()

	if *threads > 0 {
		parallel.SetMaxThreads(*threads)
	}

	reg := registry.New(*maxBytes)
	srv := server.New(reg, server.Options{
		MaxInFlight:    *maxInflight,
		MaxUploadBytes: *maxUpload,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("lagraphd listening on %s (budget %d bytes, %d workers)",
			*addr, *maxBytes, parallel.MaxThreads())
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("lagraphd: %v", err)
		}
	case <-ctx.Done():
		log.Printf("lagraphd: shutting down (draining for up to %s)", *gracePeriod)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *gracePeriod)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "lagraphd: forced shutdown: %v\n", err)
			_ = httpSrv.Close()
		}
		reg.Close()
		log.Printf("lagraphd: stopped")
	}
}
