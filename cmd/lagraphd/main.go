// lagraphd is the LAGraph analytics daemon: it holds named graphs
// resident in a registry and answers algorithm requests over HTTP/JSON,
// reusing each graph's cached properties (transpose, degrees) across
// requests the way the paper's LAGraph_Graph amortizes them across calls.
//
// Algorithm execution — synchronous and asynchronous — runs on a jobs
// engine: a worker pool of cancellable jobs with single-flight dedup and
// a result cache keyed by each graph's registry version.
//
// With -data-dir the daemon is durable: loaded graphs are checkpointed,
// mutation batches are write-ahead-logged before they become visible,
// and a restart recovers every graph at the version it last published
// (see internal/store).
//
// Quickstart:
//
//	lagraphd -addr :8080 -data-dir /var/lib/lagraphd &
//	curl -X POST localhost:8080/graphs -H 'Content-Type: application/json' \
//	     -d '{"name":"kron","class":"kron","scale":10,"edge_factor":8}'
//	curl -X POST localhost:8080/graphs/kron/algorithms/pagerank -d '{}'
//	curl -X POST localhost:8080/graphs/kron/jobs \
//	     -d '{"algorithm":"bc","params":{"sources":[0,1,2,3]}}'
//	curl -X POST localhost:8080/graphs/kron/edges \
//	     -d '{"ops":[{"op":"upsert","src":0,"dst":5,"weight":2}]}'
//	curl localhost:8080/jobs
//	curl localhost:8080/stats
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lagraph/internal/parallel"
	"lagraph/internal/registry"
	"lagraph/internal/server"
	"lagraph/internal/store"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		maxBytes    = flag.Int64("max-bytes", 1<<30, "registry memory budget in bytes (0 = unlimited)")
		maxInflight = flag.Int("max-inflight", 0, "max concurrently served requests (0 = 2x worker threads)")
		maxUpload   = flag.Int64("max-upload-bytes", 64<<20, "max POST /graphs body size")
		threads     = flag.Int("threads", 0, "kernel worker threads (0 = GOMAXPROCS)")
		gracePeriod = flag.Duration("grace", 10*time.Second, "graceful-shutdown drain period")

		workers    = flag.Int("workers", 0, "jobs-engine workers: concurrently executing algorithms (0 = kernel worker threads)")
		queueDepth = flag.Int("queue-depth", 0, "max jobs waiting for a worker (0 = 64)")
		resultTTL  = flag.Duration("result-ttl", 0, "how long completed results stay cached (0 = 5m)")
		maxResults = flag.Int("max-cached-results", 0, "result-cache entry bound (0 = 256)")
		jobTimeout = flag.Duration("job-timeout", 0, "default per-job deadline when the submission sets none (0 = none)")

		compactThreshold = flag.Int("compact-threshold", 0, "delta-log ops per graph before background compaction (0 = 4096)")
		compactRatio     = flag.Float64("compact-ratio", 0, "delta-log/graph-size ratio that triggers compaction (0 = 0.25)")
		maxBatchOps      = flag.Int("max-batch-ops", 0, "max edge operations per mutation batch (0 = 65536)")

		dataDir            = flag.String("data-dir", "", "durable store directory: persist graphs + mutation WAL, recover on boot (empty = memory only)")
		fsync              = flag.Bool("fsync", true, "fsync WAL appends and checkpoint writes (with -data-dir)")
		checkpointInterval = flag.Duration("checkpoint-interval", 5*time.Minute, "periodic WAL-bounding checkpoint cadence (0 disables; with -data-dir)")
	)
	flag.Parse()

	if *threads > 0 {
		parallel.SetMaxThreads(*threads)
	}

	var st *store.Store
	if *dataDir != "" {
		var err error
		st, err = store.Open(store.Options{
			Dir:                *dataDir,
			Fsync:              *fsync,
			CheckpointInterval: *checkpointInterval,
		})
		if err != nil {
			log.Fatalf("lagraphd: opening data dir: %v", err)
		}
	}

	reg := registry.New(*maxBytes)
	srv := server.New(reg, server.Options{
		MaxInFlight:      *maxInflight,
		MaxUploadBytes:   *maxUpload,
		Workers:          *workers,
		QueueDepth:       *queueDepth,
		ResultTTL:        *resultTTL,
		MaxCachedResults: *maxResults,
		JobTimeout:       *jobTimeout,
		CompactThreshold: *compactThreshold,
		CompactRatio:     *compactRatio,
		MaxBatchOps:      *maxBatchOps,
		Store:            st,
	})
	if st != nil {
		stats := st.StatsSnapshot()
		if rec := stats.Recovery; rec != nil {
			log.Printf("lagraphd: recovered %d graphs (%d WAL batches, %d ops) from %s in %.3fs",
				rec.GraphsRecovered, rec.BatchesReplayed, rec.OpsReplayed, *dataDir, rec.Seconds)
			for _, f := range rec.Failed {
				log.Printf("lagraphd: recovery skipped %s", f)
			}
		}
		for _, d := range stats.SkippedDirs {
			log.Printf("lagraphd: data dir entry not served: %s", d)
		}
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("lagraphd listening on %s (budget %d bytes, %d workers)",
			*addr, *maxBytes, parallel.MaxThreads())
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("lagraphd: %v", err)
		}
	case <-ctx.Done():
		log.Printf("lagraphd: shutting down (draining for up to %s)", *gracePeriod)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *gracePeriod)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "lagraphd: forced shutdown: %v\n", err)
			_ = httpSrv.Close()
		}
		srv.Close() // cancels running jobs, drains the worker pool
		reg.Close()
		log.Printf("lagraphd: stopped")
	}
}
