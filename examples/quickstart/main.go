// Quickstart: build a small graph, inspect it, and run two Basic-mode
// algorithms — the "I just want the correct answer" user mode of paper
// §II-B. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"lagraph/internal/grb"
	"lagraph/internal/lagraph"
)

func main() {
	// A tiny collaboration network: edges are undirected (both
	// orientations stored), like the paper's Listing 1 builds a
	// GrB_Matrix first and then moves it into the Graph.
	//
	//        0 --- 1
	//        |   / |
	//        |  /  |
	//        2 --- 3     4 --- 5      6 (isolated)
	src := []int{0, 1, 0, 2, 1, 2, 1, 3, 2, 3, 4, 5}
	dst := []int{1, 0, 2, 0, 2, 1, 3, 1, 3, 2, 5, 4}
	vals := make([]float64, len(src))
	for i := range vals {
		vals[i] = 1
	}
	M, err := grb.MatrixFromTuples(7, 7, src, dst, vals, nil)
	if err != nil {
		log.Fatal(err)
	}

	// The move constructor: after New, M is nil and the graph owns the
	// matrix (paper Listing 1, line 21).
	g, err := lagraph.New(&M, lagraph.AdjacencyUndirected)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("moved matrix into graph; caller pointer is now nil: %v\n\n", M == nil)

	if err := g.CheckGraph(); err != nil {
		log.Fatal(err)
	}
	g.DisplayGraph(os.Stdout)

	// Basic-mode BFS: properties (AT, RowDegree) are computed and cached
	// for us; the returned warning says so.
	parent, level, err := lagraph.BreadthFirstSearch(g, 0, true, true)
	if err != nil && !lagraph.IsWarning(err) {
		log.Fatal(err)
	}
	if lagraph.IsWarning(err) {
		fmt.Printf("\nBasic mode warned: %v\n", err)
	}
	fmt.Println("\nBFS from vertex 0:")
	level.Iterate(func(i int, l int32) {
		p, _ := parent.ExtractElement(i)
		fmt.Printf("  vertex %d: level %d, parent %d\n", i, l, p)
	})
	fmt.Println("  (vertices 4, 5, 6 are unreached — absent from the output vector)")

	// Basic-mode PageRank (the dangling-safe Graphalytics variant).
	rank, iters, err := lagraph.PageRank(g, 0.85, 1e-8, 100)
	if err != nil && !lagraph.IsWarning(err) {
		log.Fatal(err)
	}
	fmt.Printf("\nPageRank converged in %d iterations:\n", iters)
	rank.Iterate(func(i int, x float64) {
		fmt.Printf("  vertex %d: %.4f\n", i, x)
	})

	// Triangle counting.
	tri, err := lagraph.TriangleCount(g)
	if err != nil && !lagraph.IsWarning(err) {
		log.Fatal(err)
	}
	fmt.Printf("\ntriangles: %d (0-1-2 and 1-2-3)\n", tri)

	// Connected components.
	comp, err := lagraph.ConnectedComponents(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncomponents (labelled by smallest member):")
	comp.Iterate(func(i int, c int64) {
		fmt.Printf("  vertex %d -> component %d\n", i, c)
	})
}
