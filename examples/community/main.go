// Community structure with the experimental tier (paper §II-E): k-truss
// cores, label-propagation communities, local clustering coefficients and
// a maximal independent set on a planted-partition graph. Run with:
//
//	go run ./examples/community
package main

import (
	"fmt"
	"log"

	"lagraph/internal/grb"
	"lagraph/internal/lagraph"
	"lagraph/internal/lagraph/experimental"
)

func main() {
	// A planted-partition graph: four dense groups of 32, sparse
	// cross-links.
	const groups, size = 4, 32
	n := groups * size
	rng := uint64(42)
	next := func() uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return rng >> 33
	}
	var rows, cols []int
	var vals []float64
	addEdge := func(u, v int) {
		rows = append(rows, u, v)
		cols = append(cols, v, u)
		vals = append(vals, 1, 1)
	}
	for g := 0; g < groups; g++ {
		base := g * size
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				if next()%100 < 30 { // dense inside
					addEdge(base+i, base+j)
				}
			}
		}
	}
	for k := 0; k < n/2; k++ { // sparse across
		u := int(next() % uint64(n))
		v := int(next() % uint64(n))
		if u/size != v/size && u != v {
			addEdge(u, v)
		}
	}
	M, err := grb.MatrixFromTuples(n, n, rows, cols, vals, func(a, _ float64) float64 { return a })
	if err != nil {
		log.Fatal(err)
	}
	g, err := lagraph.New(&M, lagraph.AdjacencyUndirected)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planted-partition graph: %d vertices, %d entries, %d groups\n\n",
		g.NumNodes(), g.NumEdges(), groups)

	// Label propagation should rediscover the planted groups.
	labels, err := experimental.CommunityDetectionLabelPropagation(g, 30)
	if err != nil {
		log.Fatal(err)
	}
	counts := map[int64]int{}
	labels.Iterate(func(_ int, l int64) { counts[l]++ })
	fmt.Printf("CDLP found %d communities; sizes:", len(counts))
	for _, c := range counts {
		fmt.Printf(" %d", c)
	}
	fmt.Println()
	purity := 0
	for gId := 0; gId < groups; gId++ {
		inGroup := map[int64]int{}
		for i := gId * size; i < (gId+1)*size; i++ {
			l, _ := labels.ExtractElement(i)
			inGroup[l]++
		}
		best := 0
		for _, c := range inGroup {
			if c > best {
				best = c
			}
		}
		purity += best
	}
	fmt.Printf("community purity vs planted groups: %.0f%%\n\n", 100*float64(purity)/float64(n))

	// Truss decomposition: how deep do the dense cores go?
	for k := 3; ; k++ {
		truss, err := experimental.KTruss(g, k)
		if err != nil {
			log.Fatal(err)
		}
		if truss.NVals() == 0 {
			fmt.Printf("maximal non-empty truss: k = %d\n\n", k-1)
			break
		}
		fmt.Printf("%d-truss: %5d edges\n", k, truss.NVals()/2)
	}

	// Clustering: group members should have high LCC.
	lcc, err := experimental.LocalClusteringCoefficient(g)
	if err != nil {
		log.Fatal(err)
	}
	mean := grb.ReduceVectorToScalar(grb.PlusMonoid[float64](), lcc) / float64(n)
	fmt.Printf("mean local clustering coefficient: %.3f\n", mean)

	// An independent set (e.g. for picking non-adjacent community seeds).
	mis, err := experimental.MaximalIndependentSet(g, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("maximal independent set size: %d of %d vertices\n", mis.NVals(), n)
}
