// Social-network analysis: the Advanced-mode workflow of paper §II-B on a
// scale-free "Twitter-like" graph — the user opts into every property
// computation, then runs PageRank (influence), betweenness centrality
// (brokerage), triangle counting (clustering) and connected components.
// Run with:
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"
	"sort"

	"lagraph/internal/gen"
	"lagraph/internal/grb"
	"lagraph/internal/lagraph"
)

func main() {
	// A directed follower graph with celebrity skew.
	edges := gen.Twitter(11, 8, 7) // 2048 users
	ptr, idx, vals := edges.CSR()
	A, err := grb.ImportCSR(edges.N, edges.N, ptr, idx, vals, false)
	if err != nil {
		log.Fatal(err)
	}
	g, err := lagraph.New(&A, lagraph.AdjacencyDirected)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("follower graph: %d users, %d follow edges\n\n", g.NumNodes(), g.NumEdges())

	// Advanced mode: we compute the properties explicitly, once, up
	// front. An Advanced algorithm would have errored had we not.
	if _, _, err := lagraph.PageRankGAP(g, 0.85, 1e-4, 50); !isPropertyMissing(err) {
		log.Fatal("advanced mode should have demanded cached properties")
	}
	must(g.PropertyAT())
	must(g.PropertyRowDegree())
	must(g.PropertyColDegree())

	// Influence: PageRank, GAP variant (advanced users know this graph
	// has sinks and accept the GAP semantics for comparability).
	rank, iters, err := lagraph.PageRankGAP(g, 0.85, 1e-8, 100)
	must(err)
	fmt.Printf("PageRank converged in %d iterations; top accounts:\n", iters)
	for _, v := range topK(rank, 5) {
		in := int64(0)
		if d, err := g.ColDegree.ExtractElement(v.id); err == nil {
			in = d
		}
		fmt.Printf("  user %4d  rank %.5f  followers %d\n", v.id, v.val, in)
	}

	// Brokerage: batched betweenness centrality from four seeds (the
	// typical batch size, paper §IV-B). Seeds are picked among active
	// accounts — in a fragmented follow graph a random seed's forward
	// reachability can be empty.
	seeds := activeSeeds(g, 4)
	bc, err := lagraph.BetweennessCentralityAdvanced(g, seeds)
	must(err)
	fmt.Printf("\nbetweenness (batch %v); top brokers:\n", seeds)
	for _, v := range topK(bc, 5) {
		fmt.Printf("  user %4d  centrality %.1f\n", v.id, v.val)
	}

	// Clustering: symmetrise and count triangles.
	sym := symmetrised(edges)
	tri, err := lagraph.TriangleCount(sym)
	if err != nil && !lagraph.IsWarning(err) {
		log.Fatal(err)
	}
	fmt.Printf("\ntriangles in the mutual-follow graph: %d\n", tri)

	// Reach: weakly connected components.
	comp, err := lagraph.ConnectedComponents(g)
	must(err)
	sizes := map[int64]int{}
	comp.Iterate(func(_ int, c int64) { sizes[c]++ })
	largest := 0
	for _, s := range sizes {
		if s > largest {
			largest = s
		}
	}
	fmt.Printf("\nweak components: %d; largest holds %d of %d users (%.1f%%)\n",
		len(sizes), largest, g.NumNodes(), 100*float64(largest)/float64(g.NumNodes()))
}

type scored struct {
	id  int
	val float64
}

func topK(v *grb.Vector[float64], k int) []scored {
	var all []scored
	v.Iterate(func(i int, x float64) { all = append(all, scored{i, x}) })
	sort.Slice(all, func(a, b int) bool { return all[a].val > all[b].val })
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func symmetrised(e *gen.EdgeList) *lagraph.Graph[float64] {
	src := append(append([]int32{}, e.Src...), e.Dst...)
	dst := append(append([]int32{}, e.Dst...), e.Src...)
	sym := &gen.EdgeList{N: e.N, Src: src, Dst: dst, Directed: false}
	ptr, idx, vals := sym.CSR()
	A, err := grb.ImportCSR(sym.N, sym.N, ptr, idx, vals, false)
	if err != nil {
		log.Fatal(err)
	}
	// Duplicate mutual edges collapse via a rebuild through tuples.
	rows, cols, vv := A.ExtractTuples()
	B, err := grb.MatrixFromTuples(sym.N, sym.N, rows, cols, vv, func(a, _ float64) float64 { return a })
	if err != nil {
		log.Fatal(err)
	}
	g, err := lagraph.New(&B, lagraph.AdjacencyUndirected)
	if err != nil {
		log.Fatal(err)
	}
	return g
}

// activeSeeds picks the k accounts following the most others, so the
// centrality batch starts from vertices with real forward reach.
func activeSeeds(g *lagraph.Graph[float64], k int) []int {
	type ds struct {
		id  int
		deg int64
	}
	var all []ds
	g.RowDegree.Iterate(func(i int, d int64) { all = append(all, ds{i, d}) })
	sort.Slice(all, func(a, b int) bool { return all[a].deg > all[b].deg })
	seeds := make([]int, 0, k)
	for _, v := range all[:k] {
		seeds = append(seeds, v.id)
	}
	return seeds
}

func must(err error) {
	if err != nil && !lagraph.IsWarning(err) {
		log.Fatal(err)
	}
}

func isPropertyMissing(err error) bool {
	return lagraph.StatusOf(err) == lagraph.StatusPropertyMissing
}
