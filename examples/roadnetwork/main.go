// Road-network routing: delta-stepping SSSP on a weighted high-diameter
// grid — the workload class where the paper's evaluation shows the
// GraphBLAS formulation at its weakest (§VI-B's Road-graph discussion),
// demonstrated honestly. Run with:
//
//	go run ./examples/roadnetwork
package main

import (
	"fmt"
	"log"

	"lagraph/internal/gen"
	"lagraph/internal/grb"
	"lagraph/internal/lagraph"
)

func main() {
	// A 64x64 road grid with travel-time weights in [1, 255] (the GAP
	// SSSP weight convention).
	edges := gen.Road(64, 3)
	edges.AddUniformWeights(11, 1, 255)
	ptr, idx, vals := edges.CSR()
	A, err := grb.ImportCSR(edges.N, edges.N, ptr, idx, vals, false)
	if err != nil {
		log.Fatal(err)
	}
	g, err := lagraph.New(&A, lagraph.AdjacencyDirected)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("road network: %d intersections, %d road segments\n\n",
		g.NumNodes(), g.NumEdges())

	src := 0 // top-left corner
	timer := lagraph.Tic()

	// Bucket width Δ: the paper's Algorithm 5 takes it as an input; the
	// Basic entry point picks one from the average weight when given 0.
	dist, err := lagraph.SingleSourceShortestPath(g, src, 0.0)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := timer.Toc()

	// Travel times to the other three corners.
	dim := 64
	corners := map[string]int{
		"top-right":    dim - 1,
		"bottom-left":  dim * (dim - 1),
		"bottom-right": dim*dim - 1,
	}
	fmt.Printf("shortest travel times from the top-left corner (%.3fs):\n", elapsed)
	for name, v := range corners {
		d, _ := dist.ExtractElement(v)
		fmt.Printf("  %-13s %6.0f\n", name, d)
	}

	reached := 0
	var farthest float64
	dist.Iterate(func(_ int, d float64) {
		if lagraph.Reachable(d) {
			reached++
			if d > farthest {
				farthest = d
			}
		}
	})
	fmt.Printf("\nreached %d/%d intersections; farthest travel time %.0f\n",
		reached, g.NumNodes(), farthest)

	// Compare a few Δ choices: small Δ = many buckets (more iterations,
	// less wasted work); large Δ = approaches Bellman-Ford.
	fmt.Println("\nΔ sensitivity (same distances, different bucket schedules):")
	for _, delta := range []float64{16, 64, 256, 4096} {
		tm := lagraph.Tic()
		d2, err := lagraph.SSSPDeltaStepping(g, src, delta)
		if err != nil {
			log.Fatal(err)
		}
		same, err := lagraph.VectorIsEqual(dist, d2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  Δ=%-6.0f %.3fs  distances identical: %v\n", delta, tm.Toc(), same)
	}

	// The hop structure of the grid: BFS levels show the high diameter
	// that drives the paper's Road-graph pathology.
	_, levels, err := lagraph.BreadthFirstSearch(g, src, false, true)
	if err != nil && !lagraph.IsWarning(err) {
		log.Fatal(err)
	}
	maxLevel := grb.ReduceVectorToScalar(grb.MaxMonoid[int32](), levels)
	fmt.Printf("\nBFS eccentricity from the corner: %d hops — each hop is one\n", maxLevel)
	fmt.Println("GraphBLAS iteration, the per-call overhead the paper's §VI-B discusses.")
}
