// Notation walk-through: paper Tables I and II executed. Every operation
// row of Table I is run on a small example graph with the notation printed
// next to the observed result, and every semiring of Table II is exercised
// — the "concise notation" contribution of the paper, in runnable form.
// Run with:
//
//	go run ./examples/notation
package main

import (
	"fmt"
	"log"

	"lagraph/internal/grb"
)

func main() {
	// The example digraph:  0 -> 1 -> 2 -> 3, plus 0 -> 2 and 3 -> 0.
	A, err := grb.MatrixFromTuples(4, 4,
		[]int{0, 0, 1, 2, 3},
		[]int{1, 2, 2, 3, 0},
		[]float64{1, 2, 3, 4, 5}, nil)
	if err != nil {
		log.Fatal(err)
	}
	u, _ := grb.VectorFromTuples(4, []int{0, 3}, []float64{10, 20}, nil)

	fmt.Println("TABLE I — GraphBLAS operations in the paper's notation")
	fmt.Println("graph A (weights = edge ids):")
	fmt.Print(A.Sprint())
	fmt.Println("vector u:")
	fmt.Print(u.Sprint())

	section := func(notation, meaning string) {
		fmt.Printf("\n◆ %-32s %s\n", notation, meaning)
	}

	// --- mxm ---
	section("C = A ⊕.⊗ A", "mxm: two-hop paths (plus.times)")
	C := grb.MustMatrix[float64](4, 4)
	check(grb.MxM(C, grb.NoMask, nil, grb.PlusTimes[float64](), A, A, nil))
	fmt.Print(C.Sprint())

	// --- vxm / mxv ---
	section("wᵀ = uᵀ ⊕.⊗ A", "vxm: navigate out-edges from u's vertices")
	w := grb.MustVector[float64](4)
	check(grb.VxM(w, grb.NoVMask, nil, grb.PlusTimes[float64](), u, A, nil))
	fmt.Print(w.Sprint())

	section("w = A ⊕.⊗ u", "mxv: navigate in-edges (the reverse)")
	check(grb.MxV(w, grb.NoVMask, nil, grb.PlusTimes[float64](), A, u, nil))
	fmt.Print(w.Sprint())

	// --- eWiseAdd / eWiseMult ---
	section("C = A op∪ Aᵀ", "eWiseAdd: union of structures")
	AT := grb.NewTranspose(A)
	check(grb.EWiseAdd(C, grb.NoMask, nil, grb.AddOp(grb.PlusOp[float64]()), A, AT, nil))
	fmt.Printf("  %d entries (A has %d; union adds the reversed edges)\n", C.NVals(), A.NVals())

	section("C = A op∩ Aᵀ", "eWiseMult: intersection of structures")
	check(grb.EWiseMult(C, grb.NoMask, nil, grb.TimesOp[float64](), A, AT, nil))
	fmt.Printf("  %d entries (only mutual edges survive: none here except via 0↔3? -> %v)\n",
		C.NVals(), C.NVals() > 0)

	// --- extract ---
	section("C = A(i, j)", "extract: induced subgraph on {0,1,2}")
	sub := grb.MustMatrix[float64](3, 3)
	check(grb.ExtractSubmatrix(sub, grb.NoMask, nil, A, []int{0, 1, 2}, []int{0, 1, 2}, nil))
	fmt.Printf("  induced subgraph has %d of %d edges\n", sub.NVals(), A.NVals())

	section("w = A(:, j)", "extract: column 2 = in-neighbours of vertex 2")
	col := grb.MustVector[float64](4)
	check(grb.ExtractColumn(col, grb.NoVMask, nil, A, grb.All, 2, nil))
	fmt.Print(col.Sprint())

	section("w = u(i)", "extract subvector (gather)")
	sv := grb.MustVector[float64](2)
	check(grb.ExtractSubvector(sv, grb.NoVMask, nil, u, []int{3, 0}, nil))
	fmt.Print(sv.Sprint())

	// --- assign ---
	section("w⟨m⟩(i) = s", "assign: scalar into a masked subvector")
	target := grb.DenseVector(4, 0.0)
	mask, _ := grb.VectorFromTuples(4, []int{1, 2}, []bool{true, true}, nil)
	check(grb.AssignVectorScalar(target, grb.VMaskOf(mask), nil, 9, grb.All, nil))
	fmt.Print(target.Sprint())

	// --- apply / select ---
	section("C = f(A, k)", "apply: negate every entry")
	check(grb.Apply(C, grb.NoMask, nil, grb.AInvOp[float64](), A, nil))
	fmt.Printf("  A(0,1) applied: %v\n", firstVal(C))

	section("C = A⟨f(A, k)⟩", "select: keep entries > 2 (thunk k = 2)")
	check(grb.Select(C, grb.NoMask, nil, grb.ValueGT[float64](), A, 2, nil))
	fmt.Printf("  %d of %d entries survive\n", C.NVals(), A.NVals())

	section("L = tril(A)", "select: lower triangle (triangle counting)")
	check(grb.Select(C, grb.NoMask, nil, grb.Tril[float64](), A, 0, nil))
	fmt.Printf("  %d entries in tril\n", C.NVals())

	// --- reduce ---
	section("w = [⊕_j A(:, j)]", "reduce: row-wise sums (out-weight per vertex)")
	check(grb.ReduceMatrixToVector(w, grb.NoVMask, nil, grb.PlusMonoid[float64](), A, nil))
	fmt.Print(w.Sprint())

	section("s = [⊕_ij A(i, j)]", "reduce matrix to scalar")
	fmt.Printf("  total edge weight: %v\n", grb.ReduceMatrixToScalar(grb.PlusMonoid[float64](), A))

	// --- transpose / dup / build / extractTuples ---
	section("C = Aᵀ", "transpose")
	T := grb.MustMatrix[float64](4, 4)
	check(grb.Transpose(T, grb.NoMask, nil, A, nil))
	fmt.Printf("  Aᵀ(1,0) = A(0,1): %v\n", firstVal(T))

	section("C ↤ A", "dup")
	fmt.Printf("  duplicate has %d entries\n", A.Dup().NVals())

	section("{i, j, x} ↤ A", "extractTuples")
	r, c, _ := A.ExtractTuples()
	fmt.Printf("  %d tuples, first (%d,%d)\n", len(r), r[0], c[0])

	// --- masks (paper §III-C) ---
	fmt.Println("\nMASK VARIANTS on w⟨...⟩ = A ⊕.⊗ u")
	p, _ := grb.VectorFromTuples(4, []int{0, 1}, []float64{1, 0}, nil) // note explicit 0 at 1
	for _, mc := range []struct {
		notation string
		mask     grb.VMask
	}{
		{"⟨m⟩     (valued)", grb.VMaskOf(p)},
		{"⟨¬m⟩    (complemented)", grb.VMaskOf(p).Not()},
		{"⟨s(m)⟩  (structural)", grb.StructVMaskOf(p)},
		{"⟨¬s(m)⟩ (comp+structural)", grb.StructVMaskOf(p).Not()},
	} {
		out := grb.MustVector[float64](4)
		check(grb.MxV(out, mc.mask, nil, grb.PlusTimes[float64](), A, u, nil))
		fmt.Printf("  %-28s -> %d entries\n", mc.notation, out.NVals())
	}

	// --- Table II semirings ---
	fmt.Println("\nTABLE II — semirings")
	fmt.Printf("  %-14s ⊕=%-6s ⊗=%-8s D=%-7s zero=%v\n", "conventional", "plus", "times", "UINT64", 0)
	demoSemiring("any.secondi", grb.AnySecondI[float64, float64, int64](), A, u)
	fmt.Printf("  %-14s ⊕=%-6s ⊗=%-8s D=%-7s zero=+∞ (min identity)\n", "min.plus", "min", "plus", "FP64")
	fmt.Printf("  %-14s ⊕=%-6s ⊗=%-8s\n", "plus.first", "plus", "first")
	fmt.Printf("  %-14s ⊕=%-6s ⊗=%-8s\n", "plus.second", "plus", "second")
	fmt.Printf("  %-14s ⊕=%-6s ⊗=%-8s (pair(x,y)=1: structural count)\n", "plus.pair", "plus", "pair")
}

func demoSemiring(name string, s grb.Semiring[float64, float64, int64], A *grb.Matrix[float64], u *grb.Vector[float64]) {
	w := grb.MustVector[int64](4)
	if err := grb.VxM(w, grb.NoVMask, nil, s, u, A, nil); err != nil {
		log.Fatal(err)
	}
	idx, vals := w.ExtractTuples()
	fmt.Printf("  %-14s ⊕=%-6s ⊗=%-8s e.g. uᵀ⊕.⊗A gives parents %v at %v\n",
		name, "any", "secondi", vals, idx)
}

func firstVal(m *grb.Matrix[float64]) float64 {
	_, _, v := m.ExtractTuples()
	if len(v) == 0 {
		return 0
	}
	return v[0]
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
