// Package bench holds the top-level benchmark suite: one benchmark family
// per evaluation artefact of the paper.
//
//   - BenchmarkTableIII_<Alg>_<Impl>_<Graph>: the 6 kernels × 2
//     implementations × 5 graph classes of paper Table III. "GAP" is the
//     direct (GAP-benchmark-style) baseline, "SS" the LAGraph-on-GraphBLAS
//     implementation (the paper's label for LAGraph+SS:GrB).
//   - BenchmarkTableII_<semiring>: a microbenchmark per Table II semiring
//     (one vxm on the Kron graph each).
//   - BenchmarkAblation_*: the substrate claims of §VI-A — bitmap format
//     for the pull direction, the lazy sort, the any.secondi early-exit,
//     TC's masked-dot vs saxpy, and push-only vs direction-optimized BFS.
//
// Scale is deliberately small (2^12) so `go test -bench=.` finishes in
// minutes; cmd/gapbench runs the same cells at larger scales.
package bench

import (
	"sync"
	"testing"

	"lagraph/internal/bench"
	"lagraph/internal/grb"
	"lagraph/internal/lagraph"
	"lagraph/internal/lagraph/experimental"
)

const benchScale = 12

var (
	loadOnce  sync.Once
	workloads map[string]*bench.Workload
	tcLoads   map[string]*bench.Workload
)

func load(b *testing.B, name string) *bench.Workload {
	b.Helper()
	loadOnce.Do(func() {
		workloads = map[string]*bench.Workload{}
		tcLoads = map[string]*bench.Workload{}
		for _, g := range bench.GraphNames {
			w, err := bench.Load(g, benchScale, 8, 1)
			if err != nil {
				panic(err)
			}
			workloads[g] = w
			tcLoads[g] = bench.TCWorkload(w)
		}
	})
	return workloads[name]
}

func cell(b *testing.B, alg, impl, graph string) {
	w := load(b, graph)
	if alg == "TC" {
		w = tcLoads[graph]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunCell(alg, impl, w, 1); err != nil && !lagraph.IsWarning(err) {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Table III: 6 algorithms × {GAP, SS} × 5 graphs

func BenchmarkTableIII_BC_GAP_Kron(b *testing.B)    { cell(b, "BC", "GAP", "Kron") }
func BenchmarkTableIII_BC_SS_Kron(b *testing.B)     { cell(b, "BC", "SS", "Kron") }
func BenchmarkTableIII_BC_GAP_Urand(b *testing.B)   { cell(b, "BC", "GAP", "Urand") }
func BenchmarkTableIII_BC_SS_Urand(b *testing.B)    { cell(b, "BC", "SS", "Urand") }
func BenchmarkTableIII_BC_GAP_Twitter(b *testing.B) { cell(b, "BC", "GAP", "Twitter") }
func BenchmarkTableIII_BC_SS_Twitter(b *testing.B)  { cell(b, "BC", "SS", "Twitter") }
func BenchmarkTableIII_BC_GAP_Web(b *testing.B)     { cell(b, "BC", "GAP", "Web") }
func BenchmarkTableIII_BC_SS_Web(b *testing.B)      { cell(b, "BC", "SS", "Web") }
func BenchmarkTableIII_BC_GAP_Road(b *testing.B)    { cell(b, "BC", "GAP", "Road") }
func BenchmarkTableIII_BC_SS_Road(b *testing.B)     { cell(b, "BC", "SS", "Road") }

func BenchmarkTableIII_BFS_GAP_Kron(b *testing.B)    { cell(b, "BFS", "GAP", "Kron") }
func BenchmarkTableIII_BFS_SS_Kron(b *testing.B)     { cell(b, "BFS", "SS", "Kron") }
func BenchmarkTableIII_BFS_GAP_Urand(b *testing.B)   { cell(b, "BFS", "GAP", "Urand") }
func BenchmarkTableIII_BFS_SS_Urand(b *testing.B)    { cell(b, "BFS", "SS", "Urand") }
func BenchmarkTableIII_BFS_GAP_Twitter(b *testing.B) { cell(b, "BFS", "GAP", "Twitter") }
func BenchmarkTableIII_BFS_SS_Twitter(b *testing.B)  { cell(b, "BFS", "SS", "Twitter") }
func BenchmarkTableIII_BFS_GAP_Web(b *testing.B)     { cell(b, "BFS", "GAP", "Web") }
func BenchmarkTableIII_BFS_SS_Web(b *testing.B)      { cell(b, "BFS", "SS", "Web") }
func BenchmarkTableIII_BFS_GAP_Road(b *testing.B)    { cell(b, "BFS", "GAP", "Road") }
func BenchmarkTableIII_BFS_SS_Road(b *testing.B)     { cell(b, "BFS", "SS", "Road") }

func BenchmarkTableIII_PR_GAP_Kron(b *testing.B)    { cell(b, "PR", "GAP", "Kron") }
func BenchmarkTableIII_PR_SS_Kron(b *testing.B)     { cell(b, "PR", "SS", "Kron") }
func BenchmarkTableIII_PR_GAP_Urand(b *testing.B)   { cell(b, "PR", "GAP", "Urand") }
func BenchmarkTableIII_PR_SS_Urand(b *testing.B)    { cell(b, "PR", "SS", "Urand") }
func BenchmarkTableIII_PR_GAP_Twitter(b *testing.B) { cell(b, "PR", "GAP", "Twitter") }
func BenchmarkTableIII_PR_SS_Twitter(b *testing.B)  { cell(b, "PR", "SS", "Twitter") }
func BenchmarkTableIII_PR_GAP_Web(b *testing.B)     { cell(b, "PR", "GAP", "Web") }
func BenchmarkTableIII_PR_SS_Web(b *testing.B)      { cell(b, "PR", "SS", "Web") }
func BenchmarkTableIII_PR_GAP_Road(b *testing.B)    { cell(b, "PR", "GAP", "Road") }
func BenchmarkTableIII_PR_SS_Road(b *testing.B)     { cell(b, "PR", "SS", "Road") }

func BenchmarkTableIII_CC_GAP_Kron(b *testing.B)    { cell(b, "CC", "GAP", "Kron") }
func BenchmarkTableIII_CC_SS_Kron(b *testing.B)     { cell(b, "CC", "SS", "Kron") }
func BenchmarkTableIII_CC_GAP_Urand(b *testing.B)   { cell(b, "CC", "GAP", "Urand") }
func BenchmarkTableIII_CC_SS_Urand(b *testing.B)    { cell(b, "CC", "SS", "Urand") }
func BenchmarkTableIII_CC_GAP_Twitter(b *testing.B) { cell(b, "CC", "GAP", "Twitter") }
func BenchmarkTableIII_CC_SS_Twitter(b *testing.B)  { cell(b, "CC", "SS", "Twitter") }
func BenchmarkTableIII_CC_GAP_Web(b *testing.B)     { cell(b, "CC", "GAP", "Web") }
func BenchmarkTableIII_CC_SS_Web(b *testing.B)      { cell(b, "CC", "SS", "Web") }
func BenchmarkTableIII_CC_GAP_Road(b *testing.B)    { cell(b, "CC", "GAP", "Road") }
func BenchmarkTableIII_CC_SS_Road(b *testing.B)     { cell(b, "CC", "SS", "Road") }

func BenchmarkTableIII_SSSP_GAP_Kron(b *testing.B)    { cell(b, "SSSP", "GAP", "Kron") }
func BenchmarkTableIII_SSSP_SS_Kron(b *testing.B)     { cell(b, "SSSP", "SS", "Kron") }
func BenchmarkTableIII_SSSP_GAP_Urand(b *testing.B)   { cell(b, "SSSP", "GAP", "Urand") }
func BenchmarkTableIII_SSSP_SS_Urand(b *testing.B)    { cell(b, "SSSP", "SS", "Urand") }
func BenchmarkTableIII_SSSP_GAP_Twitter(b *testing.B) { cell(b, "SSSP", "GAP", "Twitter") }
func BenchmarkTableIII_SSSP_SS_Twitter(b *testing.B)  { cell(b, "SSSP", "SS", "Twitter") }
func BenchmarkTableIII_SSSP_GAP_Web(b *testing.B)     { cell(b, "SSSP", "GAP", "Web") }
func BenchmarkTableIII_SSSP_SS_Web(b *testing.B)      { cell(b, "SSSP", "SS", "Web") }
func BenchmarkTableIII_SSSP_GAP_Road(b *testing.B)    { cell(b, "SSSP", "GAP", "Road") }
func BenchmarkTableIII_SSSP_SS_Road(b *testing.B)     { cell(b, "SSSP", "SS", "Road") }

func BenchmarkTableIII_TC_GAP_Kron(b *testing.B)    { cell(b, "TC", "GAP", "Kron") }
func BenchmarkTableIII_TC_SS_Kron(b *testing.B)     { cell(b, "TC", "SS", "Kron") }
func BenchmarkTableIII_TC_GAP_Urand(b *testing.B)   { cell(b, "TC", "GAP", "Urand") }
func BenchmarkTableIII_TC_SS_Urand(b *testing.B)    { cell(b, "TC", "SS", "Urand") }
func BenchmarkTableIII_TC_GAP_Twitter(b *testing.B) { cell(b, "TC", "GAP", "Twitter") }
func BenchmarkTableIII_TC_SS_Twitter(b *testing.B)  { cell(b, "TC", "SS", "Twitter") }
func BenchmarkTableIII_TC_GAP_Web(b *testing.B)     { cell(b, "TC", "GAP", "Web") }
func BenchmarkTableIII_TC_SS_Web(b *testing.B)      { cell(b, "TC", "SS", "Web") }
func BenchmarkTableIII_TC_GAP_Road(b *testing.B)    { cell(b, "TC", "GAP", "Road") }
func BenchmarkTableIII_TC_SS_Road(b *testing.B)     { cell(b, "TC", "SS", "Road") }

// ---------------------------------------------------------------------------
// Table II: one vxm per semiring on the Kron graph

func semiringBench[TC grb.Value](b *testing.B, s grb.Semiring[float64, float64, TC]) {
	w := load(b, "Kron")
	u, err := grb.VectorFromTuples(w.Edges.N, w.Sources[:16], make([]float64, 16), nil)
	if err != nil {
		b.Fatal(err)
	}
	// Give the frontier values (1.0) so valued semirings have real work.
	for _, s := range w.Sources[:16] {
		u.SetElement(1, s)
	}
	out := grb.MustVector[TC](w.Edges.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := grb.VxM(out, grb.NoVMask, nil, s, u, w.LG.A, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableII_Conventional(b *testing.B) { semiringBench(b, grb.PlusTimes[float64]()) }
func BenchmarkTableII_AnySecondI(b *testing.B) {
	semiringBench(b, grb.AnySecondI[float64, float64, int64]())
}
func BenchmarkTableII_MinPlus(b *testing.B) { semiringBench(b, grb.MinPlus[float64]()) }
func BenchmarkTableII_PlusFirst(b *testing.B) {
	semiringBench(b, grb.PlusFirst[float64, float64]())
}
func BenchmarkTableII_PlusSecond(b *testing.B) {
	semiringBench(b, grb.PlusSecond[float64, float64]())
}
func BenchmarkTableII_PlusPair(b *testing.B) {
	semiringBench(b, grb.PlusPair[float64, float64, uint64]())
}

// ---------------------------------------------------------------------------
// Ablations: the §VI-A substrate claims

// BenchmarkAblation_BFS_DirOpt_vs_PushOnly: direction optimisation wins on
// low-diameter graphs (Algorithm 2 vs Algorithm 1).
func BenchmarkAblation_BFS_DirOpt_Kron(b *testing.B) {
	w := load(b, "Kron")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lagraph.BFSParent(w.LG, w.Sources[i%len(w.Sources)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_BFS_PushOnly_Kron(b *testing.B) {
	w := load(b, "Kron")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lagraph.BFSParentPushOnly(w.LG, w.Sources[i%len(w.Sources)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_Bitmap_{On,Off}: §VI-A credits the bitmap format for
// the pull direction; disabling it forces sparse outputs everywhere.
func bitmapAblation(b *testing.B, on bool) {
	w := load(b, "Kron")
	prev := grb.SetBitmapEnabled(on)
	defer grb.SetBitmapEnabled(prev)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lagraph.BFSParent(w.LG, w.Sources[i%len(w.Sources)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_BitmapOn_BFS(b *testing.B)  { bitmapAblation(b, true) }
func BenchmarkAblation_BitmapOff_BFS(b *testing.B) { bitmapAblation(b, false) }

// BenchmarkAblation_LazySort_{On,Off}: §VI-A's lazy sort — "if the sort is
// lazy enough, it might never occur, which is the case for the LAGraph BFS
// and BC".
func lazySortAblation(b *testing.B, on bool) {
	w := load(b, "Kron")
	prev := grb.SetLazySortEnabled(on)
	defer grb.SetLazySortEnabled(prev)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lagraph.BetweennessCentralityAdvanced(w.LG, w.Sources[:4]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_LazySortOn_BC(b *testing.B)  { lazySortAblation(b, true) }
func BenchmarkAblation_LazySortOff_BC(b *testing.B) { lazySortAblation(b, false) }

// BenchmarkAblation_TC_Dot_vs_Saxpy: the paper notes SS:GrB's TC runs a
// masked dot kernel because U is transposed via the descriptor; the saxpy
// formulation (LL) is the alternative.
func BenchmarkAblation_TC_MaskedDot(b *testing.B) {
	w := load(b, "Kron")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lagraph.TriangleCountAdvanced(w.LG, lagraph.TCSandiaLUT, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_TC_Saxpy(b *testing.B) {
	w := load(b, "Kron")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lagraph.TriangleCountAdvanced(w.LG, lagraph.TCSandiaLL, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_TC_Presort_{On,Off}: Algorithm 6's degree-sort
// heuristic on the skewed Kron graph.
func BenchmarkAblation_TC_PresortOn(b *testing.B) {
	w := load(b, "Kron")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lagraph.TriangleCountAdvanced(w.LG, lagraph.TCSandiaLUT, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_TC_PresortOff(b *testing.B) {
	w := load(b, "Kron")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lagraph.TriangleCountAdvanced(w.LG, lagraph.TCSandiaLUT, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_AnyMonoid_vs_Min: the any.secondi early-exit against
// the equivalent min.secondi reduction (no early exit) in the BFS's pull
// step shape.
func anyVsMin(b *testing.B, useAny bool) {
	w := load(b, "Kron")
	n := w.Edges.N
	u := grb.DenseVector(n, int64(1))
	out := grb.MustVector[int64](n)
	s := grb.AnySecondI[float64, int64, int64]()
	if !useAny {
		s = grb.Semiring[float64, int64, int64]{
			Name: "min.secondi",
			Add:  grb.MinMonoid[int64](),
			Mul:  grb.SecondIOp[float64, int64, int64](),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := grb.MxV(out, grb.NoVMask, nil, s, w.LG.A, u, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_AnySecondI_Pull(b *testing.B) { anyVsMin(b, true) }
func BenchmarkAblation_MinSecondI_Pull(b *testing.B) { anyVsMin(b, false) }

// BenchmarkAblation_BFS_Fused vs Unfused on the Road graph: §VI-B's fusion
// future work (one pass instead of vxm + assign per level) measured where
// it matters most — the high-diameter class with thousands of tiny steps.
func BenchmarkAblation_BFS_Fused_Road(b *testing.B) {
	w := load(b, "Road")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experimental.BFSParentFused(w.LG, w.Sources[i%len(w.Sources)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_BFS_Unfused_Road(b *testing.B) {
	w := load(b, "Road")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lagraph.BFSParentPushOnly(w.LG, w.Sources[i%len(w.Sources)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_Pool_{On,Off}: §VI-B's internal memory pool future
// work — scratch reuse across the thousands of small GraphBLAS calls the
// Road BFS makes.
func poolAblation(b *testing.B, on bool) {
	w := load(b, "Road")
	prev := grb.SetPoolEnabled(on)
	defer grb.SetPoolEnabled(prev)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lagraph.BFSParentPushOnly(w.LG, w.Sources[i%len(w.Sources)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_PoolOn_RoadBFS(b *testing.B)  { poolAblation(b, true) }
func BenchmarkAblation_PoolOff_RoadBFS(b *testing.B) { poolAblation(b, false) }
